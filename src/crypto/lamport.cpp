#include "crypto/lamport.h"

#include "base/error.h"
#include "crypto/hmac.h"

namespace simulcast::crypto {

namespace {

Bytes chain_secret(const Bytes& seed, std::size_t chain) {
  ByteWriter w;
  w.str("simulcast/lamport-sk/v1");
  w.bytes(seed);
  w.u32(static_cast<std::uint32_t>(chain));
  return digest_bytes(sha256(w.data()));
}

}  // namespace

LamportKeyPair lamport_keygen(const Bytes& seed) {
  if (seed.size() != 32) throw UsageError("lamport_keygen: seed must be 32 bytes");
  LamportKeyPair kp;
  kp.seed = seed;
  kp.pk.reserve(kLamportChains);
  for (std::size_t chain = 0; chain < kLamportChains; ++chain)
    kp.pk.push_back(sha256(chain_secret(seed, chain)));
  return kp;
}

LamportSignature lamport_sign(const LamportKeyPair& key, const Digest& message) {
  LamportSignature sig;
  sig.preimages.reserve(256);
  for (std::size_t bit = 0; bit < 256; ++bit) {
    const bool b = (message[bit / 8] >> (7 - bit % 8)) & 1;
    const std::size_t chain = 2 * bit + (b ? 1 : 0);
    sig.preimages.push_back(chain_secret(key.seed, chain));
  }
  return sig;
}

bool lamport_verify(const std::vector<Digest>& pk, const Digest& message,
                    const LamportSignature& sig) {
  if (pk.size() != kLamportChains || sig.preimages.size() != 256) return false;
  for (std::size_t bit = 0; bit < 256; ++bit) {
    const bool b = (message[bit / 8] >> (7 - bit % 8)) & 1;
    const std::size_t chain = 2 * bit + (b ? 1 : 0);
    if (!digest_equal(sha256(sig.preimages[bit]), pk[chain])) return false;
  }
  return true;
}

Bytes lamport_pk_leaf(const std::vector<Digest>& pk) {
  ByteWriter w;
  w.str("simulcast/lamport-pk/v1");
  for (const Digest& d : pk) w.bytes(digest_bytes(d));
  return digest_bytes(sha256(w.data()));
}

MerkleSigner::MerkleSigner(const Bytes& seed, std::size_t height)
    : keys_([&] {
        if (height > 12) throw UsageError("MerkleSigner: height > 12");
        std::vector<LamportKeyPair> keys;
        const std::size_t count = std::size_t{1} << height;
        keys.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          ByteWriter w;
          w.str("simulcast/merkle-signer-seed/v1");
          w.bytes(seed);
          w.u32(static_cast<std::uint32_t>(i));
          keys.push_back(lamport_keygen(digest_bytes(sha256(w.data()))));
        }
        return keys;
      }()),
      tree_([&] {
        std::vector<Bytes> leaves;
        leaves.reserve(keys_.size());
        for (const LamportKeyPair& kp : keys_) leaves.push_back(lamport_pk_leaf(kp.pk));
        return leaves;
      }()) {}

MerkleSignature MerkleSigner::sign(const Digest& message) {
  if (next_ >= keys_.size()) throw UsageError("MerkleSigner: one-time keys exhausted");
  const std::size_t index = next_++;
  MerkleSignature sig;
  sig.key_index = static_cast<std::uint32_t>(index);
  sig.one_time_pk = keys_[index].pk;
  sig.one_time_sig = lamport_sign(keys_[index], message);
  sig.path = tree_.path(index);
  return sig;
}

bool merkle_verify(const Digest& root, const Digest& message, const MerkleSignature& sig) {
  if (!lamport_verify(sig.one_time_pk, message, sig.one_time_sig)) return false;
  if (sig.path.leaf_index != sig.key_index) return false;
  return MerkleTree::verify(root, lamport_pk_leaf(sig.one_time_pk), sig.path);
}

Bytes encode_merkle_signature(const MerkleSignature& sig) {
  ByteWriter w;
  w.u32(sig.key_index);
  w.u32(static_cast<std::uint32_t>(sig.one_time_pk.size()));
  for (const Digest& d : sig.one_time_pk) w.bytes(digest_bytes(d));
  w.u32(static_cast<std::uint32_t>(sig.one_time_sig.preimages.size()));
  for (const Bytes& p : sig.one_time_sig.preimages) w.bytes(p);
  w.u64(sig.path.leaf_index);
  w.u32(static_cast<std::uint32_t>(sig.path.siblings.size()));
  for (const Digest& d : sig.path.siblings) w.bytes(digest_bytes(d));
  return w.take();
}

std::optional<MerkleSignature> decode_merkle_signature(const Bytes& data) {
  try {
    ByteReader r(data);
    MerkleSignature sig;
    sig.key_index = r.u32();
    const std::uint32_t pk_count = r.u32();
    if (pk_count != kLamportChains) return std::nullopt;
    sig.one_time_pk.reserve(pk_count);
    for (std::uint32_t i = 0; i < pk_count; ++i) {
      const Bytes b = r.bytes();
      if (b.size() != kSha256DigestSize) return std::nullopt;
      Digest d{};
      std::copy(b.begin(), b.end(), d.begin());
      sig.one_time_pk.push_back(d);
    }
    const std::uint32_t sig_count = r.u32();
    if (sig_count != 256) return std::nullopt;
    sig.one_time_sig.preimages.reserve(sig_count);
    for (std::uint32_t i = 0; i < sig_count; ++i) sig.one_time_sig.preimages.push_back(r.bytes());
    sig.path.leaf_index = r.u64();
    const std::uint32_t path_count = r.u32();
    if (path_count > 64) return std::nullopt;
    sig.path.siblings.reserve(path_count);
    for (std::uint32_t i = 0; i < path_count; ++i) {
      const Bytes b = r.bytes();
      if (b.size() != kSha256DigestSize) return std::nullopt;
      Digest d{};
      std::copy(b.begin(), b.end(), d.begin());
      sig.path.siblings.push_back(d);
    }
    if (!r.done()) return std::nullopt;
    return sig;
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace simulcast::crypto
