#include "crypto/field.h"

namespace simulcast::crypto {

Fp61 Fp61::pow(std::uint64_t exp) const noexcept {
  Fp61 result = one();
  Fp61 base = *this;
  while (exp > 0) {
    if (exp & 1) result *= base;
    base *= base;
    exp >>= 1;
  }
  return result;
}

Fp61 Fp61::inverse() const {
  if (v_ == 0) throw UsageError("Fp61::inverse: zero");
  return pow(kModulus - 2);
}

}  // namespace simulcast::crypto
