// Schnorr group: the order-q subgroup of quadratic residues of Z_p^* for a
// safe prime p = 2q + 1.
//
// The paper's feasibility results (Claims 5.1, 5.3, Corollary 5.5) assume
// enhanced trapdoor permutations; we instantiate the commitments the
// protocols need on discrete-log-style assumptions in this group instead
// (see DESIGN.md "Substitutions").  The standard parameters use a 62-bit
// safe prime - simulation scale, checked prime at construction - so the
// group is only *statistically* meaningful for our experiments, not a
// production security level.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/field.h"
#include "crypto/hmac.h"

namespace simulcast::crypto {

/// Fixed-base windowed exponentiation: for a known base, precomputes
/// table[i][d] = base^(d * 256^i) mod p for the eight radix-256 digit
/// positions of a 64-bit exponent, so base^e costs at most seven modular
/// multiplications instead of the ~90 of square-and-multiply.  32 KiB per
/// table; built once per (base, p) in the SchnorrGroup constructor.
class FixedBaseTable {
 public:
  FixedBaseTable() = default;
  FixedBaseTable(std::uint64_t base, std::uint64_t p);

  /// base^e mod p.  Bit-identical to powmod(base, e, p).
  [[nodiscard]] std::uint64_t exp(std::uint64_t e) const noexcept;

 private:
  static constexpr std::size_t kWindows = 8;
  std::uint64_t p_ = 0;
  std::vector<std::array<std::uint64_t, 256>> table_;
};

/// Group description.  Elements are canonical representatives in [1, p).
class SchnorrGroup {
 public:
  /// Constructs and validates: p, q prime, p = 2q + 1, g a generator of the
  /// order-q subgroup.  Throws UsageError on invalid parameters.
  SchnorrGroup(std::uint64_t p, std::uint64_t q, std::uint64_t g);

  /// The library-wide default group (62-bit safe prime, g = 4) with a
  /// second generator h derived by hashing, so that log_g(h) is unknown
  /// ("nothing up my sleeve") - required by Pedersen commitments.
  [[nodiscard]] static const SchnorrGroup& standard();

  [[nodiscard]] std::uint64_t p() const noexcept { return p_; }
  [[nodiscard]] std::uint64_t q() const noexcept { return q_; }
  [[nodiscard]] std::uint64_t g() const noexcept { return g_; }
  [[nodiscard]] std::uint64_t h() const noexcept { return h_; }

  /// g^e mod p for an exponent in Zq.
  [[nodiscard]] std::uint64_t exp_g(const Zq& e) const;
  /// h^e mod p.
  [[nodiscard]] std::uint64_t exp_h(const Zq& e) const;
  /// base^e mod p for a group element base.
  [[nodiscard]] std::uint64_t exp(std::uint64_t base, const Zq& e) const;
  /// Product of two group elements.
  [[nodiscard]] std::uint64_t mul(std::uint64_t a, std::uint64_t b) const;
  /// Inverse of a group element.
  [[nodiscard]] std::uint64_t inv(std::uint64_t a) const;

  /// True when `a` lies in the order-q subgroup (i.e. a^q = 1, a != 0).
  [[nodiscard]] bool is_element(std::uint64_t a) const;

  /// Uniform exponent in Zq.
  [[nodiscard]] Zq sample_exponent(HmacDrbg& drbg) const { return Zq::sample(drbg, q_); }

  /// Deterministically maps a label to a subgroup element by hashing and
  /// squaring (used to derive h and any extra generators).
  [[nodiscard]] std::uint64_t hash_to_group(std::string_view label) const;

 private:
  std::uint64_t p_;
  std::uint64_t q_;
  std::uint64_t g_;
  std::uint64_t h_ = 0;
  FixedBaseTable g_table_;
  FixedBaseTable h_table_;
};

}  // namespace simulcast::crypto
