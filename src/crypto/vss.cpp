#include "crypto/vss.h"

#include "base/error.h"
#include "crypto/modmath.h"

namespace simulcast::crypto {

FeldmanDeal FeldmanVss::deal(const Zq& secret, std::size_t threshold, std::size_t n,
                             HmacDrbg& drbg) const {
  if (secret.modulus() != group_->q()) throw UsageError("FeldmanVss::deal: secret not in Zq");
  const Polynomial<Zq> poly = Polynomial<Zq>::random(secret, threshold, drbg);

  FeldmanDeal deal;
  deal.commitments.coefficients.reserve(threshold + 1);
  for (const Zq& coeff : poly.coefficients())
    deal.commitments.coefficients.push_back(group_->exp_g(coeff));

  deal.shares.reserve(n);
  for (std::size_t i = 1; i <= n; ++i)
    deal.shares.push_back({i, poly.eval(Zq{i, group_->q()})});
  return deal;
}

bool FeldmanVss::verify_share(const FeldmanCommitments& commitments,
                              const Share<Zq>& share) const {
  if (commitments.coefficients.empty()) return false;
  if (share.y.modulus() != group_->q()) return false;
  const std::uint64_t lhs = group_->exp_g(share.y);
  // rhs = prod_j A_j^{x^j}; evaluate with Horner in the exponent:
  // prod_j A_j^{x^j} = A_0 * (A_1 * (A_2 * ...)^x)^x
  std::uint64_t rhs = 1;
  const Zq x{share.x, group_->q()};
  for (std::size_t j = commitments.coefficients.size(); j-- > 0;) {
    rhs = group_->mul(group_->exp(rhs, x), commitments.coefficients[j] % group_->p());
  }
  return lhs == rhs;
}

bool FeldmanVss::verify_commitments(const FeldmanCommitments& commitments,
                                    std::size_t threshold) const {
  if (commitments.coefficients.size() != threshold + 1) return false;
  for (std::uint64_t a : commitments.coefficients)
    if (!group_->is_element(a)) return false;
  return true;
}

Zq FeldmanVss::reconstruct(const std::vector<Share<Zq>>& shares) const {
  return shamir_reconstruct(shares);
}

std::uint64_t FeldmanVss::committed_public_value(const FeldmanCommitments& c) const {
  if (c.coefficients.empty()) throw UsageError("committed_public_value: empty commitments");
  return c.coefficients.front();
}

PedersenDeal PedersenVss::deal(const Zq& secret, std::size_t threshold, std::size_t n,
                               HmacDrbg& drbg) const {
  if (secret.modulus() != group_->q()) throw UsageError("PedersenVss::deal: secret not in Zq");
  const Polynomial<Zq> f = Polynomial<Zq>::random(secret, threshold, drbg);
  const Polynomial<Zq> fb =
      Polynomial<Zq>::random(Zq::sample(drbg, group_->q()), threshold, drbg);

  PedersenDeal deal;
  deal.commitments.reserve(threshold + 1);
  for (std::size_t j = 0; j <= threshold; ++j)
    deal.commitments.push_back(
        group_->mul(group_->exp_g(f.coefficients()[j]), group_->exp_h(fb.coefficients()[j])));

  deal.shares.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    const Zq x{i, group_->q()};
    deal.shares.push_back({i, f.eval(x), fb.eval(x)});
  }
  return deal;
}

bool PedersenVss::verify_share(const std::vector<std::uint64_t>& commitments,
                               const PedersenShare& share) const {
  if (commitments.empty()) return false;
  if (share.x == 0) return false;
  if (!share.value.valid() || share.value.modulus() != group_->q()) return false;
  if (!share.blinding.valid() || share.blinding.modulus() != group_->q()) return false;
  const std::uint64_t lhs =
      group_->mul(group_->exp_g(share.value), group_->exp_h(share.blinding));
  std::uint64_t rhs = 1;
  const Zq x{share.x, group_->q()};
  for (std::size_t j = commitments.size(); j-- > 0;)
    rhs = group_->mul(group_->exp(rhs, x), commitments[j]);
  return lhs == rhs;
}

bool PedersenVss::verify_commitments(const std::vector<std::uint64_t>& commitments,
                                     std::size_t threshold) const {
  if (commitments.size() != threshold + 1) return false;
  for (std::uint64_t c : commitments)
    if (!group_->is_element(c)) return false;
  return true;
}

Zq PedersenVss::reconstruct(const std::vector<PedersenShare>& shares) const {
  std::vector<Share<Zq>> plain;
  plain.reserve(shares.size());
  for (const PedersenShare& s : shares) plain.push_back({s.x, s.value});
  return shamir_reconstruct(plain);
}

Bytes encode_feldman_commitments(const FeldmanCommitments& c) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(c.coefficients.size()));
  for (std::uint64_t a : c.coefficients) w.u64(a);
  return w.take();
}

FeldmanCommitments decode_feldman_commitments(const Bytes& data) {
  ByteReader r(data);
  const std::uint32_t count = r.u32();
  if (count > 4096) throw ProtocolError("decode_feldman_commitments: oversized");
  FeldmanCommitments c;
  c.coefficients.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) c.coefficients.push_back(r.u64());
  return c;
}

Bytes encode_share(const Share<Zq>& s) {
  ByteWriter w;
  w.u64(s.x);
  w.u64(s.y.value());
  return w.take();
}

Share<Zq> decode_share(const Bytes& data, std::uint64_t q) {
  ByteReader r(data);
  Share<Zq> s;
  s.x = r.u64();
  s.y = Zq{r.u64(), q};
  return s;
}

Bytes encode_group_elements(const std::vector<std::uint64_t>& elements) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(elements.size()));
  for (std::uint64_t e : elements) w.u64(e);
  return w.take();
}

std::vector<std::uint64_t> decode_group_elements(const Bytes& data) {
  ByteReader r(data);
  const std::uint32_t count = r.u32();
  if (count > 4096) throw ProtocolError("decode_group_elements: oversized");
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(r.u64());
  if (!r.done()) throw ProtocolError("decode_group_elements: trailing bytes");
  return out;
}

Bytes encode_pedersen_share(const PedersenShare& s) {
  ByteWriter w;
  w.u64(s.x);
  w.u64(s.value.value());
  w.u64(s.blinding.value());
  return w.take();
}

PedersenShare decode_pedersen_share(const Bytes& data, std::uint64_t q) {
  ByteReader r(data);
  PedersenShare s;
  s.x = r.u64();
  s.value = Zq{r.u64(), q};
  s.blinding = Zq{r.u64(), q};
  if (!r.done()) throw ProtocolError("decode_pedersen_share: trailing bytes");
  return s;
}

}  // namespace simulcast::crypto
