#include "crypto/hmac.h"

#include "base/error.h"

namespace simulcast::crypto {

Digest hmac_sha256(const Bytes& key, const Bytes& data) {
  Bytes k = key;
  if (k.size() > kSha256BlockSize) k = digest_bytes(sha256(k));
  k.resize(kSha256BlockSize, 0);

  Bytes inner_pad(kSha256BlockSize);
  Bytes outer_pad(kSha256BlockSize);
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    inner_pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    outer_pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  Sha256 inner;
  inner.update(inner_pad);
  inner.update(data);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(outer_pad);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

Bytes hkdf(const Bytes& salt, const Bytes& ikm, std::string_view info, std::size_t length) {
  if (length > 255 * kSha256DigestSize) throw UsageError("hkdf: output too long");
  const Digest prk = hmac_sha256(salt, ikm);
  const Bytes prk_bytes = digest_bytes(prk);

  Bytes out;
  out.reserve(length);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    t = digest_bytes(hmac_sha256(prk_bytes, block));
    const std::size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

HmacDrbg::HmacDrbg(const Bytes& seed_material)
    : key_(kSha256DigestSize, 0x00), value_(kSha256DigestSize, 0x01) {
  update(seed_material);
}

HmacDrbg::HmacDrbg(std::uint64_t seed, std::string_view personalization)
    : HmacDrbg([&] {
        ByteWriter w;
        w.u64(seed);
        w.str(personalization);
        return w.take();
      }()) {}

void HmacDrbg::update(const Bytes& material) {
  // K = HMAC(K, V || 0x00 || material); V = HMAC(K, V)
  Bytes block = value_;
  block.push_back(0x00);
  block.insert(block.end(), material.begin(), material.end());
  key_ = digest_bytes(hmac_sha256(key_, block));
  value_ = digest_bytes(hmac_sha256(key_, value_));
  if (!material.empty()) {
    block = value_;
    block.push_back(0x01);
    block.insert(block.end(), material.begin(), material.end());
    key_ = digest_bytes(hmac_sha256(key_, block));
    value_ = digest_bytes(hmac_sha256(key_, value_));
  }
}

Bytes HmacDrbg::generate(std::size_t length) {
  Bytes out;
  out.reserve(length);
  while (out.size() < length) {
    value_ = digest_bytes(hmac_sha256(key_, value_));
    const std::size_t take = std::min(value_.size(), length - out.size());
    out.insert(out.end(), value_.begin(), value_.begin() + static_cast<std::ptrdiff_t>(take));
  }
  update({});
  return out;
}

std::uint64_t HmacDrbg::next_u64() {
  const Bytes b = generate(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

std::uint64_t HmacDrbg::below(std::uint64_t bound) {
  if (bound == 0) throw UsageError("HmacDrbg::below: bound == 0");
  // Rejection sampling on the top multiple of bound.
  const std::uint64_t limit = bound * ((~std::uint64_t{0}) / bound);
  for (;;) {
    const std::uint64_t v = next_u64();
    if (v < limit) return v % bound;
  }
}

void HmacDrbg::reseed(const Bytes& material) {
  update(material);
}

}  // namespace simulcast::crypto
