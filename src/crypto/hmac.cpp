#include "crypto/hmac.h"

#include <cstring>

#include "base/error.h"

namespace simulcast::crypto {

void HmacSha256::set_key(const std::uint8_t* key, std::size_t len) noexcept {
  std::uint8_t block[kSha256BlockSize] = {};
  Digest hashed;
  if (len > kSha256BlockSize) {
    Sha256 ctx;
    ctx.update(key, len);
    hashed = ctx.finish();
    key = hashed.data();
    len = hashed.size();
  }
  std::memcpy(block, key, len);

  for (std::size_t i = 0; i < kSha256BlockSize; ++i)
    block[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
  Sha256 inner;
  inner.update(block, kSha256BlockSize);
  inner_mid_ = inner.midstate();

  for (std::size_t i = 0; i < kSha256BlockSize; ++i)
    block[i] = static_cast<std::uint8_t>(block[i] ^ (0x36 ^ 0x5c));
  Sha256 outer;
  outer.update(block, kSha256BlockSize);
  outer_mid_ = outer.midstate();
}

Digest HmacSha256::finish(Sha256& inner) const noexcept {
  const Digest inner_digest = inner.finish();
  Sha256 outer(outer_mid_, kSha256BlockSize);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

Digest HmacSha256::mac(const std::uint8_t* data, std::size_t len) const noexcept {
  Sha256 inner = begin();
  inner.update(data, len);
  return finish(inner);
}

Digest hmac_sha256(const Bytes& key, const Bytes& data) {
  HmacSha256 ctx(key);
  return ctx.mac(data.data(), data.size());
}

Bytes hkdf(const Bytes& salt, const Bytes& ikm, std::string_view info, std::size_t length) {
  if (length > 255 * kSha256DigestSize) throw UsageError("hkdf: output too long");
  const Digest prk = hmac_sha256(salt, ikm);
  const Bytes prk_bytes = digest_bytes(prk);

  Bytes out;
  out.reserve(length);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    t = digest_bytes(hmac_sha256(prk_bytes, block));
    const std::size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

HmacDrbg::HmacDrbg(const Bytes& seed_material) {
  key_.fill(0x00);
  value_.fill(0x01);
  hmac_.set_key(key_);
  update(seed_material.data(), seed_material.size());
}

HmacDrbg::HmacDrbg(std::uint64_t seed, std::string_view personalization)
    : HmacDrbg([&] {
        ByteWriter w;
        w.u64(seed);
        w.str(personalization);
        return w.take();
      }()) {}

void HmacDrbg::update(const std::uint8_t* material, std::size_t len) {
  // K = HMAC(K, V || sep || material); V = HMAC(K, V), once per separator
  // byte (0x00, then 0x01 when material is present) per SP 800-90A.
  const auto derive = [&](std::uint8_t sep) {
    Sha256 ctx = hmac_.begin();
    ctx.update(value_.data(), value_.size());
    ctx.update(&sep, 1);
    ctx.update(material, len);
    key_ = hmac_.finish(ctx);
    hmac_.set_key(key_);
    value_ = hmac_.mac(value_.data(), value_.size());
  };
  derive(0x00);
  if (len != 0) derive(0x01);
}

void HmacDrbg::generate_into(std::uint8_t* out, std::size_t length) {
  std::size_t produced = 0;
  while (produced < length) {
    value_ = hmac_.mac(value_.data(), value_.size());
    const std::size_t take = std::min(value_.size(), length - produced);
    std::memcpy(out + produced, value_.data(), take);
    produced += take;
  }
  update(nullptr, 0);
}

Bytes HmacDrbg::generate(std::size_t length) {
  Bytes out(length);
  generate_into(out.data(), length);
  return out;
}

std::uint64_t HmacDrbg::next_u64() {
  std::uint8_t b[8];
  generate_into(b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t HmacDrbg::below(std::uint64_t bound) {
  if (bound == 0) throw UsageError("HmacDrbg::below: bound == 0");
  // Rejection sampling on the top multiple of bound.
  const std::uint64_t limit = bound * ((~std::uint64_t{0}) / bound);
  for (;;) {
    const std::uint64_t v = next_u64();
    if (v < limit) return v % bound;
  }
}

void HmacDrbg::reseed(const Bytes& material) {
  update(material.data(), material.size());
}

}  // namespace simulcast::crypto
