#include "crypto/sigma.h"

namespace simulcast::crypto {

SigmaCommitment sigma_commit(const SchnorrGroup& group, HmacDrbg& drbg) {
  SigmaCommitment c;
  c.u = group.sample_exponent(drbg);
  c.v = group.sample_exponent(drbg);
  c.a = group.mul(group.exp_g(c.u), group.exp_h(c.v));
  return c;
}

SigmaResponse sigma_respond(const SigmaCommitment& commitment, const Zq& challenge, const Zq& m,
                            const Zq& r) {
  SigmaResponse resp;
  resp.a = commitment.a;
  resp.z1 = commitment.u + challenge * m;
  resp.z2 = commitment.v + challenge * r;
  return resp;
}

bool sigma_verify(const SchnorrGroup& group, std::uint64_t statement_c, const Zq& challenge,
                  const SigmaResponse& response) {
  if (!group.is_element(statement_c) || !group.is_element(response.a)) return false;
  if (!response.z1.valid() || response.z1.modulus() != group.q()) return false;
  if (!response.z2.valid() || response.z2.modulus() != group.q()) return false;
  const std::uint64_t lhs = group.mul(group.exp_g(response.z1), group.exp_h(response.z2));
  const std::uint64_t rhs = group.mul(response.a, group.exp(statement_c, challenge));
  return lhs == rhs;
}

}  // namespace simulcast::crypto
