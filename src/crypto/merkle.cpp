#include "crypto/merkle.h"

#include "base/error.h"

namespace simulcast::crypto {

Digest MerkleTree::hash_leaf(const Bytes& leaf) {
  return sha256_tagged("simulcast/merkle-leaf/v1", leaf);
}

Digest MerkleTree::hash_node(const Digest& left, const Digest& right) {
  ByteWriter w;
  w.str("simulcast/merkle-node/v1");
  w.bytes(digest_bytes(left));
  w.bytes(digest_bytes(right));
  return sha256(w.data());
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves) : leaf_count_(leaves.size()) {
  if (leaves.empty()) throw UsageError("MerkleTree: no leaves");
  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const Bytes& leaf : leaves) level.push_back(hash_leaf(leaf));
  // Pad to a power of two by repeating the last hash.
  while ((level.size() & (level.size() - 1)) != 0) level.push_back(level.back());
  levels_.push_back(std::move(level));
  while (levels_.back().size() > 1) {
    const std::vector<Digest>& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve(prev.size() / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2)
      next.push_back(hash_node(prev[i], prev[i + 1]));
    levels_.push_back(std::move(next));
  }
}

MerklePath MerkleTree::path(std::size_t index) const {
  if (index >= leaf_count_) throw UsageError("MerkleTree::path: index out of range");
  MerklePath p;
  p.leaf_index = index;
  std::size_t i = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    p.siblings.push_back(levels_[level][i ^ 1]);
    i >>= 1;
  }
  return p;
}

bool MerkleTree::verify(const Digest& root, const Bytes& leaf, const MerklePath& path) {
  Digest current = hash_leaf(leaf);
  std::size_t i = path.leaf_index;
  for (const Digest& sibling : path.siblings) {
    current = (i & 1) ? hash_node(sibling, current) : hash_node(current, sibling);
    i >>= 1;
  }
  return digest_equal(current, root);
}

}  // namespace simulcast::crypto
