// 64-bit modular arithmetic and primality testing.
//
// These are the scalar kernels beneath the Schnorr group (crypto/group.h)
// and the runtime-modulus field Zq (crypto/field.h).  Products go through
// unsigned __int128, so every modulus up to 2^63 is supported.
#pragma once

#include <cstdint>

namespace simulcast::crypto {

/// (a * b) mod m via 128-bit intermediate.  Precondition: m != 0.
[[nodiscard]] std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) noexcept;

/// (base ^ exp) mod m by square-and-multiply.  Precondition: m != 0.
[[nodiscard]] std::uint64_t powmod(std::uint64_t base, std::uint64_t exp,
                                   std::uint64_t m) noexcept;

/// Modular inverse of a mod m via extended Euclid; throws simulcast::UsageError
/// when gcd(a, m) != 1.
[[nodiscard]] std::uint64_t invmod(std::uint64_t a, std::uint64_t m);

/// Deterministic Miller-Rabin, correct for all 64-bit inputs (fixed witness
/// set {2,3,5,7,11,13,17,19,23,29,31,37}).
[[nodiscard]] bool is_prime_u64(std::uint64_t n) noexcept;

}  // namespace simulcast::crypto
