// Commitment schemes used by the commit-then-reveal protocols.
//
// Both schemes bind a caller-supplied *label* (protocol id, party id,
// session nonce) into the commitment.  That label binding is what stops the
// copy/mauling attacks on parallel broadcast: a corrupted party cannot
// replay an honest party's commitment under its own identity, because the
// label would not verify.  The paper's protocols assume non-malleable
// commitments for the same reason.
//
// - HashCommitmentScheme: C = SHA256(label || message || randomness); hiding
//   and binding in the random-oracle model.
// - PedersenCommitmentScheme: C = g^m h^r in the standard Schnorr group with
//   m = SHA256(label || message) reduced mod q; statistically hiding,
//   computationally binding under discrete log (collision-resistance of the
//   message map comes from SHA-256).
//
// Protocols take a `const CommitmentScheme&`, so the backend is an
// experiment parameter (ablated in bench_e9_rounds).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "base/bytes.h"
#include "crypto/group.h"
#include "crypto/hmac.h"

namespace simulcast::crypto {

/// Opaque commitment value, as broadcast on the wire.
struct Commitment {
  Bytes value;
  friend bool operator==(const Commitment&, const Commitment&) = default;
};

/// What the committer keeps and later reveals.
struct Opening {
  Bytes message;
  Bytes randomness;
};

class CommitmentScheme {
 public:
  virtual ~CommitmentScheme() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Samples the blinding randomness for `message`.
  [[nodiscard]] virtual Opening make_opening(const Bytes& message, HmacDrbg& drbg) const = 0;

  /// Commits to an opening under a context label.
  [[nodiscard]] virtual Commitment commit(std::string_view label,
                                          const Opening& opening) const = 0;

  /// Checks that `opening` opens `commitment` under `label`.
  [[nodiscard]] virtual bool verify(std::string_view label, const Commitment& commitment,
                                    const Opening& opening) const = 0;

  /// Size in bytes of a commitment on the wire (for the E9 byte counts).
  [[nodiscard]] virtual std::size_t commitment_size() const = 0;
};

class HashCommitmentScheme final : public CommitmentScheme {
 public:
  [[nodiscard]] std::string name() const override { return "hash-sha256"; }
  [[nodiscard]] Opening make_opening(const Bytes& message, HmacDrbg& drbg) const override;
  [[nodiscard]] Commitment commit(std::string_view label, const Opening& opening) const override;
  [[nodiscard]] bool verify(std::string_view label, const Commitment& commitment,
                            const Opening& opening) const override;
  [[nodiscard]] std::size_t commitment_size() const override { return kSha256DigestSize; }
};

class PedersenCommitmentScheme final : public CommitmentScheme {
 public:
  /// A Pedersen commitment on the wire is one group element, serialized as
  /// a u64.  commit() produces exactly this many bytes and verify()
  /// rejects anything else.
  static constexpr std::size_t kCommitmentBytes = 8;

  /// Uses SchnorrGroup::standard() by default.
  PedersenCommitmentScheme();
  explicit PedersenCommitmentScheme(const SchnorrGroup& group) : group_(&group) {}

  [[nodiscard]] std::string name() const override { return "pedersen"; }
  [[nodiscard]] Opening make_opening(const Bytes& message, HmacDrbg& drbg) const override;
  [[nodiscard]] Commitment commit(std::string_view label, const Opening& opening) const override;
  [[nodiscard]] bool verify(std::string_view label, const Commitment& commitment,
                            const Opening& opening) const override;
  [[nodiscard]] std::size_t commitment_size() const override { return kCommitmentBytes; }

 private:
  [[nodiscard]] Zq message_exponent(std::string_view label, const Bytes& message) const;

  const SchnorrGroup* group_;
};

/// Factory by name ("hash"/"hash-sha256" or "pedersen"); throws UsageError on
/// unknown name.  Accepts every CommitmentScheme::name() spelling, so the
/// factory round-trips a scheme through its name (the process-worker
/// handshake relies on this).
[[nodiscard]] std::unique_ptr<CommitmentScheme> make_commitment_scheme(std::string_view name);

}  // namespace simulcast::crypto
