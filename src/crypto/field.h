// Prime fields used by the secret-sharing substrates.
//
// Fp61 is GF(2^61 - 1), the fast fixed-modulus field used by Shamir sharing
// and the BGW-style MPC in protocols/theta_mpc.  Zq is a runtime-modulus
// field used for exponent arithmetic of the Schnorr group (crypto/group.h),
// where the modulus is the group order q.  Both satisfy the FieldElement
// shape expected by the Shamir template (crypto/shamir.h): +, -, *, inverse,
// value(), and a static sample() from a DRBG.
#pragma once

#include <cstdint>

#include "base/error.h"
#include "crypto/hmac.h"
#include "crypto/modmath.h"

namespace simulcast::crypto {

/// GF(p) with p = 2^61 - 1 (a Mersenne prime).  Elements are canonical
/// representatives in [0, p).
class Fp61 {
 public:
  static constexpr std::uint64_t kModulus = (std::uint64_t{1} << 61) - 1;

  constexpr Fp61() = default;
  /// Reduces an arbitrary 64-bit value into the field.
  constexpr explicit Fp61(std::uint64_t v) noexcept : v_(reduce_once(v % kModulus)) {}

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return v_; }
  [[nodiscard]] static constexpr Fp61 zero() noexcept { return Fp61{}; }
  [[nodiscard]] static constexpr Fp61 one() noexcept { return Fp61{1}; }
  [[nodiscard]] static constexpr std::uint64_t modulus() noexcept { return kModulus; }

  friend constexpr Fp61 operator+(Fp61 a, Fp61 b) noexcept {
    return from_raw(reduce_once(a.v_ + b.v_));
  }
  friend constexpr Fp61 operator-(Fp61 a, Fp61 b) noexcept {
    return from_raw(reduce_once(a.v_ + kModulus - b.v_));
  }
  friend Fp61 operator*(Fp61 a, Fp61 b) noexcept {
    // Mersenne reduction: split the 128-bit product at bit 61.
    const unsigned __int128 prod = static_cast<unsigned __int128>(a.v_) * b.v_;
    const std::uint64_t lo = static_cast<std::uint64_t>(prod) & kModulus;
    const std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
    return from_raw(reduce_once(reduce_once(lo + (hi & kModulus)) + (hi >> 61)));
  }
  constexpr Fp61 operator-() const noexcept { return from_raw(v_ == 0 ? 0 : kModulus - v_); }

  Fp61& operator+=(Fp61 b) noexcept { return *this = *this + b; }
  Fp61& operator-=(Fp61 b) noexcept { return *this = *this - b; }
  Fp61& operator*=(Fp61 b) noexcept { return *this = *this * b; }

  friend constexpr bool operator==(Fp61 a, Fp61 b) noexcept { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Fp61 a, Fp61 b) noexcept { return a.v_ != b.v_; }

  /// a^exp by square-and-multiply.
  [[nodiscard]] Fp61 pow(std::uint64_t exp) const noexcept;

  /// Multiplicative inverse via Fermat; throws UsageError on zero.
  [[nodiscard]] Fp61 inverse() const;

  /// Uniform field element from a DRBG.
  [[nodiscard]] static Fp61 sample(HmacDrbg& drbg) { return Fp61{drbg.below(kModulus)}; }

  /// Element with value `v` in the same field (generic-code hook shared
  /// with Zq, where the modulus is carried per element).
  [[nodiscard]] constexpr Fp61 with_same_modulus(std::uint64_t v) const noexcept {
    return Fp61{v};
  }

  /// Uniform element in the same field.
  [[nodiscard]] Fp61 sample_same(HmacDrbg& drbg) const { return sample(drbg); }

 private:
  static constexpr Fp61 from_raw(std::uint64_t v) noexcept {
    Fp61 e;
    e.v_ = v;
    return e;
  }
  static constexpr std::uint64_t reduce_once(std::uint64_t v) noexcept {
    return v >= kModulus ? v - kModulus : v;
  }

  std::uint64_t v_ = 0;
};

/// GF(q) with runtime modulus q < 2^63.  Each element carries its modulus;
/// mixing moduli throws UsageError.  Used for Schnorr-group exponents.
class Zq {
 public:
  Zq() = default;
  Zq(std::uint64_t v, std::uint64_t modulus) : v_(v % check(modulus)), q_(modulus) {}

  [[nodiscard]] std::uint64_t value() const noexcept { return v_; }
  [[nodiscard]] std::uint64_t modulus() const noexcept { return q_; }
  [[nodiscard]] bool valid() const noexcept { return q_ != 0; }

  friend Zq operator+(const Zq& a, const Zq& b) {
    match(a, b);
    const std::uint64_t s = a.v_ + b.v_;
    return Zq::raw(s >= a.q_ ? s - a.q_ : s, a.q_);
  }
  friend Zq operator-(const Zq& a, const Zq& b) {
    match(a, b);
    return Zq::raw(a.v_ >= b.v_ ? a.v_ - b.v_ : a.v_ + a.q_ - b.v_, a.q_);
  }
  friend Zq operator*(const Zq& a, const Zq& b) {
    match(a, b);
    return Zq::raw(mulmod(a.v_, b.v_, a.q_), a.q_);
  }
  Zq operator-() const { return Zq::raw(v_ == 0 ? 0 : q_ - v_, q_); }

  Zq& operator+=(const Zq& b) { return *this = *this + b; }
  Zq& operator-=(const Zq& b) { return *this = *this - b; }
  Zq& operator*=(const Zq& b) { return *this = *this * b; }

  friend bool operator==(const Zq& a, const Zq& b) noexcept {
    return a.q_ == b.q_ && a.v_ == b.v_;
  }
  friend bool operator!=(const Zq& a, const Zq& b) noexcept { return !(a == b); }

  [[nodiscard]] Zq pow(std::uint64_t exp) const { return Zq::raw(powmod(v_, exp, q_), q_); }
  [[nodiscard]] Zq inverse() const {
    if (v_ == 0) throw UsageError("Zq::inverse: zero");
    return Zq::raw(invmod(v_, q_), q_);
  }

  [[nodiscard]] static Zq sample(HmacDrbg& drbg, std::uint64_t modulus) {
    return Zq{drbg.below(check(modulus)), modulus};
  }

  /// Element with value `v` modulo this element's modulus.
  [[nodiscard]] Zq with_same_modulus(std::uint64_t v) const { return Zq{v, q_}; }

  /// Uniform element modulo this element's modulus.
  [[nodiscard]] Zq sample_same(HmacDrbg& drbg) const { return sample(drbg, q_); }

 private:
  static Zq raw(std::uint64_t v, std::uint64_t q) {
    Zq e;
    e.v_ = v;
    e.q_ = q;
    return e;
  }
  static std::uint64_t check(std::uint64_t modulus) {
    if (modulus < 2 || modulus > (std::uint64_t{1} << 63))
      throw UsageError("Zq: modulus out of range");
    return modulus;
  }
  static void match(const Zq& a, const Zq& b) {
    if (a.q_ != b.q_ || a.q_ == 0) throw UsageError("Zq: modulus mismatch");
  }

  std::uint64_t v_ = 0;
  std::uint64_t q_ = 0;
};

}  // namespace simulcast::crypto
