#include "crypto/group.h"

#include "base/error.h"
#include "crypto/modmath.h"
#include "crypto/sha256.h"

namespace simulcast::crypto {

namespace {

// 62-bit safe prime p = 2q + 1, verified at first use by the SchnorrGroup
// constructor; g = 2^2 generates the order-q quadratic-residue subgroup.
constexpr std::uint64_t kStandardP = 3599462771108323727ULL;
constexpr std::uint64_t kStandardQ = 1799731385554161863ULL;
constexpr std::uint64_t kStandardG = 4ULL;

}  // namespace

FixedBaseTable::FixedBaseTable(std::uint64_t base, std::uint64_t p)
    : p_(p), table_(kWindows) {
  // window_base walks base^(256^i); each row is that power's digit ladder.
  std::uint64_t window_base = base % p;
  for (std::size_t i = 0; i < kWindows; ++i) {
    table_[i][0] = 1 % p;
    for (std::size_t d = 1; d < 256; ++d)
      table_[i][d] = mulmod(table_[i][d - 1], window_base, p);
    window_base = mulmod(table_[i][255], window_base, p);
  }
}

std::uint64_t FixedBaseTable::exp(std::uint64_t e) const noexcept {
  std::uint64_t acc = 1 % p_;
  for (std::size_t i = 0; i < kWindows && e != 0; ++i, e >>= 8) {
    const std::uint64_t d = e & 0xff;
    if (d != 0) acc = mulmod(acc, table_[i][d], p_);
  }
  return acc;
}

SchnorrGroup::SchnorrGroup(std::uint64_t p, std::uint64_t q, std::uint64_t g)
    : p_(p), q_(q), g_(g) {
  if (!is_prime_u64(p)) throw UsageError("SchnorrGroup: p not prime");
  if (!is_prime_u64(q)) throw UsageError("SchnorrGroup: q not prime");
  if (p != 2 * q + 1) throw UsageError("SchnorrGroup: p != 2q + 1");
  if (g <= 1 || g >= p || powmod(g, q, p) != 1)
    throw UsageError("SchnorrGroup: g not an order-q element");
  h_ = hash_to_group("simulcast/pedersen-h/v1");
  g_table_ = FixedBaseTable(g_, p_);
  h_table_ = FixedBaseTable(h_, p_);
}

const SchnorrGroup& SchnorrGroup::standard() {
  static const SchnorrGroup group(kStandardP, kStandardQ, kStandardG);
  return group;
}

std::uint64_t SchnorrGroup::exp_g(const Zq& e) const {
  if (e.modulus() != q_) throw UsageError("SchnorrGroup::exp: exponent modulus != q");
  return g_table_.exp(e.value());
}

std::uint64_t SchnorrGroup::exp_h(const Zq& e) const {
  if (e.modulus() != q_) throw UsageError("SchnorrGroup::exp: exponent modulus != q");
  return h_table_.exp(e.value());
}

std::uint64_t SchnorrGroup::exp(std::uint64_t base, const Zq& e) const {
  if (e.modulus() != q_) throw UsageError("SchnorrGroup::exp: exponent modulus != q");
  return powmod(base, e.value(), p_);
}

std::uint64_t SchnorrGroup::mul(std::uint64_t a, std::uint64_t b) const {
  return mulmod(a, b, p_);
}

std::uint64_t SchnorrGroup::inv(std::uint64_t a) const {
  return invmod(a, p_);
}

bool SchnorrGroup::is_element(std::uint64_t a) const {
  return a != 0 && a < p_ && powmod(a, q_, p_) == 1;
}

std::uint64_t SchnorrGroup::hash_to_group(std::string_view label) const {
  // Squaring any nonzero residue lands in the QR subgroup, which has prime
  // order q, so the result generates it unless it equals 1.
  std::uint64_t counter = 0;
  for (;;) {
    ByteWriter w;
    w.str(label);
    w.u64(p_);
    w.u64(counter++);
    const Digest d = sha256(w.data());
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x = (x << 8) | d[static_cast<std::size_t>(i)];
    x %= p_;
    if (x <= 1) continue;
    const std::uint64_t candidate = mulmod(x, x, p_);
    if (candidate != 1) return candidate;
  }
}

}  // namespace simulcast::crypto
