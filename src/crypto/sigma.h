// Interactive sigma protocol: proof of knowledge of a Pedersen
// representation, i.e. of (m, r) such that C = g^m h^r.
//
// The Chor-Rabin protocol (protocols/chor_rabin.h) schedules these proofs in
// O(log n) batches: every dealer proves knowledge of the constant term of
// its Pedersen-VSS commitment vector before any value is revealed, so a
// corrupted party that copied or mauled someone else's commitments is
// disqualified during the commit phase.  The three moves are
//   prover:  A = g^u h^v                         (fresh u, v)
//   public:  challenge c in Zq                   (joint coin, fixed after A)
//   prover:  z1 = u + c*m,  z2 = v + c*r
//   check:   g^z1 h^z2 == A * C^c
// Special soundness: two accepting transcripts with distinct challenges for
// the same A yield the witness, so a prover that commits to A before seeing
// c knows (m, r) except with probability 1/q.
#pragma once

#include "crypto/field.h"
#include "crypto/group.h"
#include "crypto/hmac.h"

namespace simulcast::crypto {

/// Prover's first move plus the secrets needed for the response.
struct SigmaCommitment {
  std::uint64_t a = 0;  ///< A = g^u h^v (public)
  Zq u;                 ///< secret nonce
  Zq v;                 ///< secret nonce
};

/// Prover's third move.
struct SigmaResponse {
  std::uint64_t a = 0;  ///< echo of A for self-contained verification
  Zq z1;
  Zq z2;
};

/// First move: sample nonces and form A.
[[nodiscard]] SigmaCommitment sigma_commit(const SchnorrGroup& group, HmacDrbg& drbg);

/// Third move: respond to challenge c with witness (m, r).
[[nodiscard]] SigmaResponse sigma_respond(const SigmaCommitment& commitment, const Zq& challenge,
                                          const Zq& m, const Zq& r);

/// Verifier check: g^z1 h^z2 == A * C^c.
[[nodiscard]] bool sigma_verify(const SchnorrGroup& group, std::uint64_t statement_c,
                                const Zq& challenge, const SigmaResponse& response);

}  // namespace simulcast::crypto
