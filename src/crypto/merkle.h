// Merkle hash trees.
//
// Used by the many-time hash-based signature scheme (crypto/lamport.h) to
// authenticate a batch of one-time public keys under a single root, and by
// tests as a standalone integrity structure.  Leaves are hashed with a
// domain tag distinct from interior nodes (second-preimage hardening).
#pragma once

#include <cstddef>
#include <vector>

#include "base/bytes.h"
#include "crypto/sha256.h"

namespace simulcast::crypto {

/// Authentication path: sibling digests from a leaf up to the root.
struct MerklePath {
  std::size_t leaf_index = 0;
  std::vector<Digest> siblings;
};

class MerkleTree {
 public:
  /// Builds a tree over `leaves` (each hashed with the leaf tag).  The leaf
  /// count is padded up to a power of two by repeating the final leaf hash.
  /// Throws UsageError on an empty leaf set.
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  [[nodiscard]] const Digest& root() const noexcept { return levels_.back().front(); }
  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaf_count_; }

  /// Authentication path for leaf `index`.
  [[nodiscard]] MerklePath path(std::size_t index) const;

  /// Verifies `leaf` against `root` using `path`.
  [[nodiscard]] static bool verify(const Digest& root, const Bytes& leaf,
                                   const MerklePath& path);

 private:
  static Digest hash_leaf(const Bytes& leaf);
  static Digest hash_node(const Digest& left, const Digest& right);

  std::size_t leaf_count_;
  std::vector<std::vector<Digest>> levels_;  // levels_[0] = leaf hashes
};

}  // namespace simulcast::crypto
