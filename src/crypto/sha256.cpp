#include "crypto/sha256.h"

#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SIMULCAST_SHA256_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace simulcast::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int k) noexcept {
  return (x >> k) | (x << (32 - k));
}

#if SIMULCAST_SHA256_X86_DISPATCH

/// One-block compression using the x86 SHA extensions (sha256rnds2 /
/// sha256msg1 / sha256msg2).  Same function as the portable path — the
/// NIST-vector tests cover whichever one the dispatcher picks — but
/// roughly an order of magnitude fewer cycles per block.  Only called
/// when __builtin_cpu_supports("sha") says the instructions exist.
__attribute__((target("sha,sse4.1,ssse3"))) void compress_sha_ni(
    std::uint32_t* state, const std::uint8_t* block) noexcept {
  const __m128i kShuffle = _mm_set_epi64x(
      static_cast<long long>(0x0c0d0e0f08090a0bULL), static_cast<long long>(0x0405060700010203ULL));
  const auto k = [](std::uint64_t hi, std::uint64_t lo) {
    return _mm_set_epi64x(static_cast<long long>(hi), static_cast<long long>(lo));
  };

  // Repack the state words {a..h} into the ABEF/CDGH register layout the
  // sha256rnds2 instruction expects.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);

  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;
  __m128i msg, msg0, msg1, msg2, msg3;

  // Rounds 0-3
  msg = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 0));
  msg0 = _mm_shuffle_epi8(msg, kShuffle);
  msg = _mm_add_epi32(msg0, k(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 4-7
  msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16));
  msg1 = _mm_shuffle_epi8(msg1, kShuffle);
  msg = _mm_add_epi32(msg1, k(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 8-11
  msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32));
  msg2 = _mm_shuffle_epi8(msg2, kShuffle);
  msg = _mm_add_epi32(msg2, k(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 12-15
  msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48));
  msg3 = _mm_shuffle_epi8(msg3, kShuffle);
  msg = _mm_add_epi32(msg3, k(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 16-19
  msg = _mm_add_epi32(msg0, k(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg0, msg3, 4);
  msg1 = _mm_add_epi32(msg1, tmp);
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 20-23
  msg = _mm_add_epi32(msg1, k(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 24-27
  msg = _mm_add_epi32(msg2, k(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 28-31
  msg = _mm_add_epi32(msg3, k(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 32-35
  msg = _mm_add_epi32(msg0, k(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg0, msg3, 4);
  msg1 = _mm_add_epi32(msg1, tmp);
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 36-39
  msg = _mm_add_epi32(msg1, k(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 40-43
  msg = _mm_add_epi32(msg2, k(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 44-47
  msg = _mm_add_epi32(msg3, k(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 48-51
  msg = _mm_add_epi32(msg0, k(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg0, msg3, 4);
  msg1 = _mm_add_epi32(msg1, tmp);
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 52-55
  msg = _mm_add_epi32(msg1, k(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 56-59
  msg = _mm_add_epi32(msg2, k(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 60-63
  msg = _mm_add_epi32(msg3, k(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);

  // Unpack ABEF/CDGH back to {a..h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);

  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

bool has_sha_ni() noexcept {
  static const bool supported = __builtin_cpu_supports("sha") != 0;
  return supported;
}

#endif  // SIMULCAST_SHA256_X86_DISPATCH

}  // namespace

Sha256::Sha256() noexcept
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c,
             0x1f83d9ab, 0x5be0cd19},
      buffer_{} {}

void Sha256::compress(const std::uint8_t* block) noexcept {
#if SIMULCAST_SHA256_X86_DISPATCH
  if (has_sha_ni()) {
    compress_sha_ni(state_.data(), block);
    return;
  }
#endif
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
#if defined(__GNUC__) || defined(__clang__)
    std::uint32_t v;
    std::memcpy(&v, block + 4 * i, 4);
    w[i] = __builtin_bswap32(v);
#else
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
#endif
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[static_cast<std::size_t>(i)] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(const std::uint8_t* data, std::size_t len) noexcept {
  if (len == 0) return;
  total_len_ += len;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(len, kSha256BlockSize - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == kSha256BlockSize) {
      compress(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (len >= kSha256BlockSize) {
    compress(data);
    data += kSha256BlockSize;
    len -= kSha256BlockSize;
  }
  if (len > 0) {
    std::memcpy(buffer_.data(), data, len);
    buffer_len_ = len;
  }
}

Digest Sha256::finish() noexcept {
  // Pad in place: 0x80, zeros to the length field, then the bit count.
  // Spills into a second block when fewer than 9 bytes of the current one
  // remain.
  const std::uint64_t bit_len = total_len_ * 8;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > kSha256BlockSize - 8) {
    std::memset(buffer_.data() + buffer_len_, 0, kSha256BlockSize - buffer_len_);
    compress(buffer_.data());
    buffer_len_ = 0;
  }
  std::memset(buffer_.data() + buffer_len_, 0, kSha256BlockSize - 8 - buffer_len_);
  for (int i = 0; i < 8; ++i)
    buffer_[static_cast<std::size_t>(56 + i)] =
        static_cast<std::uint8_t>((bit_len >> (56 - 8 * i)) & 0xff);
  compress(buffer_.data());
  Digest out{};
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
  }
  return out;
}

void HashWriter::u32(std::uint32_t v) noexcept {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) {
    b[i] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  ctx_.update(b, sizeof b);
}

void HashWriter::u64(std::uint64_t v) noexcept {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  ctx_.update(b, sizeof b);
}

Digest sha256(const Bytes& data) noexcept {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

Digest sha256(std::string_view data) noexcept {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

Digest sha256_tagged(std::string_view domain, const Bytes& data) {
  ByteWriter w;
  w.str(domain);
  w.bytes(data);
  return sha256(w.data());
}

Bytes digest_bytes(const Digest& d) {
  return Bytes(d.begin(), d.end());
}

bool digest_equal(const Digest& a, const Digest& b) noexcept {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kSha256DigestSize; ++i)
    diff = static_cast<std::uint8_t>(diff | (a[i] ^ b[i]));
  return diff == 0;
}

}  // namespace simulcast::crypto
