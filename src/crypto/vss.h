// Feldman verifiable secret sharing over the Schnorr group.
//
// The CGMA simultaneous-broadcast protocol (protocols/cgma.h) follows the
// structure of [7]: every party *verifiably* shares its input before anyone
// reveals anything, so by the time reveals start, all inputs - including
// corrupted parties' - are information-theoretically fixed and extractable
// by the honest majority.  Feldman VSS is the classic instantiation: the
// dealer shares s with a degree-t polynomial f over Zq and broadcasts
// commitments A_j = g^{f_j}; the share for party i is f(i+1), publicly
// checkable against the A_j.
//
// Feldman commitments leak g^s; for a one-bit secret that would leak the
// bit, so dealers share a *masked* secret: the protocol layer samples a
// random pad and deals s' = s + pad with the pad dealt separately, or (what
// CgmaProtocol does) deals a uniform field element whose low bit is the
// input XOR a published mask.  This file only provides the VSS mechanics.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/field.h"
#include "crypto/group.h"
#include "crypto/shamir.h"

namespace simulcast::crypto {

/// The dealer's public message: coefficient commitments A_j = g^{f_j}.
struct FeldmanCommitments {
  std::vector<std::uint64_t> coefficients;  ///< group elements, degree+1 of them
};

/// One dealt instance: public commitments plus the private shares
/// (shares[i] goes to party i over a private channel).
struct FeldmanDeal {
  FeldmanCommitments commitments;
  std::vector<Share<Zq>> shares;
};

class FeldmanVss {
 public:
  explicit FeldmanVss(const SchnorrGroup& group) : group_(&group) {}
  FeldmanVss() : group_(&SchnorrGroup::standard()) {}

  [[nodiscard]] const SchnorrGroup& group() const noexcept { return *group_; }

  /// Deals a (threshold, n) verifiable sharing of `secret` in Zq.
  [[nodiscard]] FeldmanDeal deal(const Zq& secret, std::size_t threshold, std::size_t n,
                                 HmacDrbg& drbg) const;

  /// Verifies share (x, y) against the commitments:
  /// g^y == prod_j A_j^{x^j}.
  [[nodiscard]] bool verify_share(const FeldmanCommitments& commitments,
                                  const Share<Zq>& share) const;

  /// Checks the well-formedness of a commitment vector (every element in
  /// the subgroup, expected length).
  [[nodiscard]] bool verify_commitments(const FeldmanCommitments& commitments,
                                        std::size_t threshold) const;

  /// Reconstructs the secret from verified shares (needs >= threshold+1).
  [[nodiscard]] Zq reconstruct(const std::vector<Share<Zq>>& shares) const;

  /// The public value g^secret implied by the commitments (A_0).  Exposed
  /// because reveal phases can check a claimed secret against it.
  [[nodiscard]] std::uint64_t committed_public_value(const FeldmanCommitments& c) const;

 private:
  const SchnorrGroup* group_;
};

/// Pedersen VSS: like Feldman, but the coefficient commitments are
/// C_j = g^{f_j} h^{f'_j} for a second blinding polynomial f', which makes
/// the sharing *perfectly hiding* - nothing about the secret (not even
/// g^secret) leaks from the public commitments.  This is what the
/// simultaneous-broadcast protocols use to commit to one-bit inputs: the
/// commit phase fixes every party's bit recoverably (any t+1 verifying
/// shares reconstruct it) without leaking it.
struct PedersenShare {
  std::uint64_t x = 0;  ///< evaluation point
  Zq value;             ///< f(x)
  Zq blinding;          ///< f'(x)
};

struct PedersenDeal {
  std::vector<std::uint64_t> commitments;  ///< C_j = g^{f_j} h^{f'_j}
  std::vector<PedersenShare> shares;       ///< shares[i] for party i
};

class PedersenVss {
 public:
  explicit PedersenVss(const SchnorrGroup& group) : group_(&group) {}
  PedersenVss() : group_(&SchnorrGroup::standard()) {}

  [[nodiscard]] const SchnorrGroup& group() const noexcept { return *group_; }

  /// Deals a (threshold, n) Pedersen sharing of `secret`.
  [[nodiscard]] PedersenDeal deal(const Zq& secret, std::size_t threshold, std::size_t n,
                                  HmacDrbg& drbg) const;

  /// Verifies g^{value} h^{blinding} == prod_j C_j^{x^j}.
  [[nodiscard]] bool verify_share(const std::vector<std::uint64_t>& commitments,
                                  const PedersenShare& share) const;

  /// Checks commitment-vector well-formedness.
  [[nodiscard]] bool verify_commitments(const std::vector<std::uint64_t>& commitments,
                                        std::size_t threshold) const;

  /// Reconstructs the secret from >= threshold+1 verifying shares.
  [[nodiscard]] Zq reconstruct(const std::vector<PedersenShare>& shares) const;

 private:
  const SchnorrGroup* group_;
};

/// Wire encoding helpers (used by protocol messages).
[[nodiscard]] Bytes encode_feldman_commitments(const FeldmanCommitments& c);
[[nodiscard]] FeldmanCommitments decode_feldman_commitments(const Bytes& data);
[[nodiscard]] Bytes encode_share(const Share<Zq>& s);
[[nodiscard]] Share<Zq> decode_share(const Bytes& data, std::uint64_t q);
[[nodiscard]] Bytes encode_group_elements(const std::vector<std::uint64_t>& elements);
[[nodiscard]] std::vector<std::uint64_t> decode_group_elements(const Bytes& data);
[[nodiscard]] Bytes encode_pedersen_share(const PedersenShare& s);
[[nodiscard]] PedersenShare decode_pedersen_share(const Bytes& data, std::uint64_t q);

}  // namespace simulcast::crypto
