// HMAC-SHA256 (RFC 2104), HKDF (RFC 5869) and HMAC-DRBG (NIST SP 800-90A).
//
// HMAC-DRBG supplies protocol randomness wherever a party needs bytes that
// must be unpredictable to the adversary (commitment blinding, VSS
// polynomial coefficients, signature keys).  It is deterministic given its
// seed, which keeps whole protocol executions replayable.
#pragma once

#include <string_view>

#include "base/bytes.h"
#include "crypto/sha256.h"

namespace simulcast::crypto {

/// HMAC-SHA256 of `data` under `key`.
[[nodiscard]] Digest hmac_sha256(const Bytes& key, const Bytes& data);

/// HKDF-Extract-then-Expand producing `length` bytes (length <= 255*32).
[[nodiscard]] Bytes hkdf(const Bytes& salt, const Bytes& ikm, std::string_view info,
                         std::size_t length);

/// Deterministic random bit generator per SP 800-90A (HMAC variant, no
/// prediction-resistance calls — reseeding is explicit).
class HmacDrbg {
 public:
  /// Instantiates from entropy || nonce || personalization.
  explicit HmacDrbg(const Bytes& seed_material);

  /// Convenience: seed from a 64-bit seed plus a personalization string.
  HmacDrbg(std::uint64_t seed, std::string_view personalization);

  /// Generates `length` pseudorandom bytes.
  [[nodiscard]] Bytes generate(std::size_t length);

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform value in [0, bound) by rejection sampling.  bound > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound);

  /// Mixes extra entropy into the state.
  void reseed(const Bytes& material);

 private:
  void update(const Bytes& material);

  Bytes key_;
  Bytes value_;
};

}  // namespace simulcast::crypto
