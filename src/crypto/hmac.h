// HMAC-SHA256 (RFC 2104), HKDF (RFC 5869) and HMAC-DRBG (NIST SP 800-90A).
//
// HMAC-DRBG supplies protocol randomness wherever a party needs bytes that
// must be unpredictable to the adversary (commitment blinding, VSS
// polynomial coefficients, signature keys).  It is deterministic given its
// seed, which keeps whole protocol executions replayable.
#pragma once

#include <string_view>

#include "base/bytes.h"
#include "crypto/sha256.h"

namespace simulcast::crypto {

/// HMAC-SHA256 of `data` under `key`.
[[nodiscard]] Digest hmac_sha256(const Bytes& key, const Bytes& data);

/// Precomputed-key HMAC-SHA256.  set_key() compresses the ipad/opad blocks
/// once and caches the midstates, so every subsequent MAC under the same
/// key skips both pad compressions — for the 32-byte keys HMAC-DRBG uses,
/// that halves the SHA-256 work per invocation.  Output is bit-identical
/// to hmac_sha256().
class HmacSha256 {
 public:
  HmacSha256() = default;
  explicit HmacSha256(const Bytes& key) { set_key(key.data(), key.size()); }

  /// (Re)keys the context; hashes keys longer than one block first, per
  /// RFC 2104.
  void set_key(const std::uint8_t* key, std::size_t len) noexcept;
  void set_key(const Digest& key) noexcept { set_key(key.data(), key.size()); }

  /// Starts a MAC: a context primed with the inner-pad midstate.  Absorb
  /// the message into it, then call finish().
  [[nodiscard]] Sha256 begin() const noexcept {
    return Sha256(inner_mid_, kSha256BlockSize);
  }

  /// Completes a MAC started by begin().
  [[nodiscard]] Digest finish(Sha256& inner) const noexcept;

  /// One-shot convenience over a (data, len) message.
  [[nodiscard]] Digest mac(const std::uint8_t* data, std::size_t len) const noexcept;

 private:
  Sha256Midstate inner_mid_{};
  Sha256Midstate outer_mid_{};
};

/// HKDF-Extract-then-Expand producing `length` bytes (length <= 255*32).
[[nodiscard]] Bytes hkdf(const Bytes& salt, const Bytes& ikm, std::string_view info,
                         std::size_t length);

/// Deterministic random bit generator per SP 800-90A (HMAC variant, no
/// prediction-resistance calls — reseeding is explicit).
class HmacDrbg {
 public:
  /// Instantiates from entropy || nonce || personalization.
  explicit HmacDrbg(const Bytes& seed_material);

  /// Convenience: seed from a 64-bit seed plus a personalization string.
  HmacDrbg(std::uint64_t seed, std::string_view personalization);

  /// Generates `length` pseudorandom bytes.
  [[nodiscard]] Bytes generate(std::size_t length);

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform value in [0, bound) by rejection sampling.  bound > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound);

  /// Mixes extra entropy into the state.
  void reseed(const Bytes& material);

 private:
  void update(const std::uint8_t* material, std::size_t len);
  void generate_into(std::uint8_t* out, std::size_t length);

  Digest key_{};
  Digest value_{};
  HmacSha256 hmac_;  ///< keyed by key_; rekeyed whenever key_ changes
};

}  // namespace simulcast::crypto
