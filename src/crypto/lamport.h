// Hash-based signatures: Lamport one-time signatures plus a Merkle
// many-time extension.
//
// The Dolev-Strong authenticated broadcast (broadcast/dolev_strong.h) needs
// unforgeable signatures; the paper's model lets us assume any standard
// signature, and hash-based signatures keep the whole substrate reducible
// to SHA-256 (see DESIGN.md "Substitutions").  A Lamport key signs exactly
// one 256-bit digest; MerkleSigner pre-generates 2^h one-time keys (all
// derived from one seed, so key material is O(1)) and authenticates each
// one-time public key under a single Merkle root.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "base/bytes.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace simulcast::crypto {

inline constexpr std::size_t kLamportChains = 2 * 256;

/// Lamport one-time key pair; the private key is re-derivable from the seed.
struct LamportKeyPair {
  Bytes seed;                 ///< 32-byte secret seed
  std::vector<Digest> pk;     ///< 512 digests: H(sk[b][i])
};

/// One-time signature: 256 revealed preimages.
struct LamportSignature {
  std::vector<Bytes> preimages;  ///< 256 entries of 32 bytes
};

/// Derives a key pair from a 32-byte seed.
[[nodiscard]] LamportKeyPair lamport_keygen(const Bytes& seed);

/// Signs a digest (one-time!  reusing a key leaks the private key).
[[nodiscard]] LamportSignature lamport_sign(const LamportKeyPair& key, const Digest& message);

/// Verifies a signature against the public key.
[[nodiscard]] bool lamport_verify(const std::vector<Digest>& pk, const Digest& message,
                                  const LamportSignature& sig);

/// Compact encoding of a Lamport public key (hash of all 512 digests),
/// used as a Merkle leaf.
[[nodiscard]] Bytes lamport_pk_leaf(const std::vector<Digest>& pk);

/// Many-time signature under a Merkle root over 2^height one-time keys.
struct MerkleSignature {
  std::uint32_t key_index = 0;
  std::vector<Digest> one_time_pk;
  LamportSignature one_time_sig;
  MerklePath path;
};

class MerkleSigner {
 public:
  /// Derives 2^height one-time keys from `seed`.
  MerkleSigner(const Bytes& seed, std::size_t height);

  [[nodiscard]] const Digest& public_root() const noexcept { return tree_.root(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return keys_.size(); }
  [[nodiscard]] std::size_t used() const noexcept { return next_; }

  /// Signs with the next unused one-time key; throws UsageError when
  /// exhausted.
  [[nodiscard]] MerkleSignature sign(const Digest& message);

 private:
  std::vector<LamportKeyPair> keys_;
  MerkleTree tree_;
  std::size_t next_ = 0;
};

/// Verifies a Merkle signature against the signer's public root.
[[nodiscard]] bool merkle_verify(const Digest& root, const Digest& message,
                                 const MerkleSignature& sig);

/// Wire encoding (used by Dolev-Strong message relaying).
[[nodiscard]] Bytes encode_merkle_signature(const MerkleSignature& sig);
[[nodiscard]] std::optional<MerkleSignature> decode_merkle_signature(const Bytes& data);

}  // namespace simulcast::crypto
