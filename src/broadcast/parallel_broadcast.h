// Parallel broadcast per Definition 3.1 and the announced-value extraction.
//
// A protocol implements parallel broadcast when honest outputs agree
// (consistency) and coordinate j of every honest output equals honest
// party j's input (correctness).  The value "announced" by party i is the
// i-th coordinate of any honest party's output; by footnote 2 of the paper,
// a corrupted party that contributes nothing valid is announced as 0 - that
// default is applied inside each protocol machine, so extraction here only
// selects and cross-checks honest outputs.
#pragma once

#include <optional>

#include "base/bitvec.h"
#include "sim/network.h"

namespace simulcast::broadcast {

/// The vector W of Definition 3.1, with the consistency flag.
struct Announced {
  BitVec w;                ///< the announced vector (valid iff consistent)
  bool consistent = false; ///< all honest outputs present and equal
};

/// Extracts W from an execution result.  Never throws on adversarial
/// misbehaviour: an inconsistent execution yields consistent = false and an
/// unspecified w (the first honest output, or empty if none exists).
[[nodiscard]] Announced extract_announced(const sim::ExecutionResult& result,
                                          const std::vector<sim::PartyId>& corrupted);

/// Checks the correctness property: for every honest j, w[j] equals j's
/// input bit.  (Consistency is reported by extract_announced.)
[[nodiscard]] bool correct_for_honest(const Announced& announced, const BitVec& inputs,
                                      const std::vector<sim::PartyId>& corrupted);

}  // namespace simulcast::broadcast
