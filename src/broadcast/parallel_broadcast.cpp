#include "broadcast/parallel_broadcast.h"

#include <algorithm>

namespace simulcast::broadcast {

Announced extract_announced(const sim::ExecutionResult& result,
                            const std::vector<sim::PartyId>& corrupted) {
  Announced out;
  out.consistent = result.honest_outputs_consistent(corrupted);
  for (sim::PartyId id = 0; id < result.outputs.size(); ++id) {
    const bool is_corrupted =
        std::find(corrupted.begin(), corrupted.end(), id) != corrupted.end();
    if (is_corrupted) continue;
    if (result.outputs[id].has_value()) {
      out.w = *result.outputs[id];
      break;
    }
  }
  return out;
}

bool correct_for_honest(const Announced& announced, const BitVec& inputs,
                        const std::vector<sim::PartyId>& corrupted) {
  if (!announced.consistent) return false;
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    const bool is_corrupted =
        std::find(corrupted.begin(), corrupted.end(), j) != corrupted.end();
    if (is_corrupted) continue;
    if (announced.w.get(j) != inputs.get(j)) return false;
  }
  return true;
}

}  // namespace simulcast::broadcast
