// Dolev-Strong authenticated single-sender broadcast over point-to-point
// channels.
//
// The simultaneous-broadcast protocols in src/protocols use the simulator's
// broadcast-channel primitive; this module shows the primitive is
// constructible in the model (the classic t+1-round protocol with
// signatures, here our hash-based Merkle/Lamport signatures), and gives the
// test suite a place to exercise equivocation attacks end to end.
//
// Round structure for an n-party session tolerating t corruptions:
//   round 0:        every party broadcasts its signature public root (PKI).
//   round 1:        the sender signs its bit and sends <bit, chain> to all.
//   rounds 2..t+1:  a party that newly extracted a value appends its own
//                   signature and relays; a chain is valid at round r iff it
//                   carries r distinct valid signatures starting with the
//                   sender's.
// Output: the single extracted value, or the default 0 when the extracted
// set is empty or has more than one element (the sender equivocated).
// Total rounds: t + 2.
#pragma once

#include <map>
#include <set>

#include "crypto/lamport.h"
#include "sim/protocol.h"

namespace simulcast::broadcast {

/// Single-sender broadcast as a ParallelBroadcastProtocol: party `sender`
/// broadcasts its input bit; every honest party outputs a vector whose
/// sender coordinate is the agreed bit and whose other coordinates are 0.
class DolevStrongBroadcast final : public sim::ParallelBroadcastProtocol {
 public:
  /// Tolerates `t` corruptions (rounds = t + 2 including PKI).
  DolevStrongBroadcast(sim::PartyId sender, std::size_t t) : sender_(sender), t_(t) {}

  [[nodiscard]] std::string name() const override { return "dolev-strong"; }
  [[nodiscard]] std::size_t rounds(std::size_t /*n*/) const override { return t_ + 2; }
  [[nodiscard]] std::size_t max_corruptions(std::size_t /*n*/) const override { return t_; }
  [[nodiscard]] std::unique_ptr<sim::Party> make_party(
      sim::PartyId id, bool input, const sim::ProtocolParams& params) const override;

  [[nodiscard]] sim::PartyId sender() const noexcept { return sender_; }
  [[nodiscard]] std::size_t tolerance() const noexcept { return t_; }

 private:
  sim::PartyId sender_;
  std::size_t t_;
};

/// One link of a signature chain on the wire.
struct ChainLink {
  sim::PartyId signer = 0;
  crypto::MerkleSignature signature;
};

/// The digest every chain link signs: binds protocol, sender and bit.
[[nodiscard]] crypto::Digest dolev_strong_digest(sim::PartyId sender, bool bit);

/// Wire helpers exposed for tests and adversaries.
[[nodiscard]] Bytes encode_chain(bool bit, const std::vector<ChainLink>& chain);
struct DecodedChain {
  bool bit = false;
  std::vector<ChainLink> chain;
};
[[nodiscard]] std::optional<DecodedChain> decode_chain(const Bytes& data);

}  // namespace simulcast::broadcast
