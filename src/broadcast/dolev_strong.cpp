#include "broadcast/dolev_strong.h"

#include <algorithm>

#include "base/error.h"

namespace simulcast::broadcast {

namespace {

constexpr std::size_t kSignerHeight = 3;  // 8 one-time keys; a session signs <= 2 values

// File-local interned tags so the per-message dispatch below is an integer
// compare, not a string compare.
const sim::Tag kRootTag{"ds-root"};
const sim::Tag kRelayTag{"ds-relay"};

class DolevStrongParty final : public sim::Party {
 public:
  DolevStrongParty(sim::PartyId sender, std::size_t t, bool input)
      : sender_(sender), t_(t), input_(input) {}

  void begin(sim::PartyContext& ctx) override {
    signer_.emplace(ctx.drbg().generate(32), kSignerHeight);
    n_ = ctx.n();
  }

  void on_round(sim::Round round, const sim::Inbox& inbox,
                sim::PartyContext& ctx) override {
    if (round == 0) {
      ctx.broadcast(kRootTag, crypto::digest_bytes(signer_->public_root()));
      return;
    }
    if (round == 1) {
      record_roots(inbox);
      if (ctx.id() == sender_) {
        const crypto::Digest digest = dolev_strong_digest(sender_, input_);
        std::vector<ChainLink> chain;
        chain.push_back({ctx.id(), signer_->sign(digest)});
        extracted_.insert(input_);
        send_to_all(ctx, encode_chain(input_, chain));
      }
      return;
    }
    process_chains(round, inbox, &ctx);
  }

  void finish(const sim::Inbox& inbox, sim::PartyContext& /*ctx*/) override {
    process_chains(t_ + 2, inbox, nullptr);
  }

  [[nodiscard]] BitVec output() const override {
    BitVec b(n_);
    if (extracted_.size() == 1) b.set(sender_, *extracted_.begin());
    return b;  // empty or equivocating extracted set falls back to 0
  }

 private:
  void record_roots(const sim::Inbox& inbox) {
    for (const sim::Message& m : inbox) {
      // The PKI must be consistent: roots are only accepted off the
      // broadcast channel, or an equivocating signer could register
      // different keys with different parties and split their verdicts.
      if (m.to != sim::kBroadcast) continue;
      if (m.tag != kRootTag || m.payload.size() != crypto::kSha256DigestSize) continue;
      if (roots_.contains(m.from)) continue;  // first root wins
      crypto::Digest d{};
      std::copy(m.payload.begin(), m.payload.end(), d.begin());
      roots_[m.from] = d;
    }
  }

  void send_to_all(sim::PartyContext& ctx, const Bytes& payload) {
    for (sim::PartyId id = 0; id < n_; ++id)
      if (id != ctx.id()) ctx.send(id, kRelayTag, payload);
  }

  [[nodiscard]] bool chain_valid(const DecodedChain& dc, std::size_t min_links) const {
    const std::size_t links = dc.chain.size();
    if (links < min_links || links > t_ + 1) return false;
    if (dc.chain.front().signer != sender_) return false;
    std::set<sim::PartyId> signers;
    const crypto::Digest digest = dolev_strong_digest(sender_, dc.bit);
    for (const ChainLink& link : dc.chain) {
      if (!signers.insert(link.signer).second) return false;  // duplicate signer
      const auto root = roots_.find(link.signer);
      if (root == roots_.end()) return false;
      if (!crypto::merkle_verify(root->second, digest, link.signature)) return false;
    }
    return true;
  }

  void process_chains(sim::Round round, const sim::Inbox& inbox,
                      sim::PartyContext* ctx) {
    for (const sim::Message& m : inbox) {
      if (m.tag != kRelayTag) continue;
      const auto dc = decode_chain(m.payload);
      if (!dc.has_value()) continue;
      if (!chain_valid(*dc, round - 1)) continue;
      if (!extracted_.insert(dc->bit).second) continue;  // already extracted
      // Relay with our signature appended, if sending is still possible.
      if (ctx != nullptr && round <= t_ + 1) {
        DecodedChain relay = *dc;
        relay.chain.push_back({ctx->id(), signer_->sign(dolev_strong_digest(sender_, dc->bit))});
        send_to_all(*ctx, encode_chain(relay.bit, relay.chain));
      }
    }
  }

  sim::PartyId sender_;
  std::size_t t_;
  bool input_;
  std::size_t n_ = 0;
  std::optional<crypto::MerkleSigner> signer_;
  std::map<sim::PartyId, crypto::Digest> roots_;
  std::set<bool> extracted_;
};

}  // namespace

crypto::Digest dolev_strong_digest(sim::PartyId sender, bool bit) {
  ByteWriter w;
  w.str("simulcast/dolev-strong/v1");
  w.u64(sender);
  w.u8(bit ? 1 : 0);
  return crypto::sha256(w.data());
}

Bytes encode_chain(bool bit, const std::vector<ChainLink>& chain) {
  ByteWriter w;
  w.u8(bit ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(chain.size()));
  for (const ChainLink& link : chain) {
    w.u64(link.signer);
    w.bytes(crypto::encode_merkle_signature(link.signature));
  }
  return w.take();
}

std::optional<DecodedChain> decode_chain(const Bytes& data) {
  try {
    ByteReader r(data);
    DecodedChain dc;
    dc.bit = r.u8() != 0;
    const std::uint32_t count = r.u32();
    if (count > 256) return std::nullopt;
    dc.chain.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      ChainLink link;
      link.signer = r.u64();
      const auto sig = crypto::decode_merkle_signature(r.bytes());
      if (!sig.has_value()) return std::nullopt;
      link.signature = *sig;
      dc.chain.push_back(std::move(link));
    }
    if (!r.done()) return std::nullopt;
    return dc;
  } catch (const Error&) {
    return std::nullopt;
  }
}

std::unique_ptr<sim::Party> DolevStrongBroadcast::make_party(
    sim::PartyId id, bool input, const sim::ProtocolParams& params) const {
  (void)id;
  (void)params;
  return std::make_unique<DolevStrongParty>(sender_, t_, input);
}

}  // namespace simulcast::broadcast
