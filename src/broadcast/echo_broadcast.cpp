#include "broadcast/echo_broadcast.h"

#include <array>
#include <optional>

namespace simulcast::broadcast {

namespace {

// File-local interned tags: message dispatch is an id compare.
const sim::Tag kInitTag{"echo-init"};
const sim::Tag kEchoTag{"echo"};

class EchoParty final : public sim::Party {
 public:
  EchoParty(sim::PartyId sender, std::size_t t, bool input)
      : sender_(sender), t_(t), input_(input) {}

  void begin(sim::PartyContext& ctx) override { n_ = ctx.n(); }

  void on_round(sim::Round round, const sim::Inbox& inbox,
                sim::PartyContext& ctx) override {
    if (round == 0) {
      if (ctx.id() == sender_) {
        received_ = input_;
        for (sim::PartyId id = 0; id < n_; ++id)
          if (id != ctx.id()) ctx.send(id, kInitTag, Bytes{input_ ? std::uint8_t{1} : std::uint8_t{0}});
      }
      return;
    }
    // round == 1: record the init, echo it.
    for (const sim::Message& m : inbox) {
      if (m.tag == kInitTag && m.from == sender_ && m.payload.size() == 1 && !received_)
        received_ = m.payload[0] != 0;
    }
    if (received_.has_value()) {
      ++echoes_[*received_ ? 1 : 0];  // count own echo
      for (sim::PartyId id = 0; id < n_; ++id)
        if (id != ctx.id())
          ctx.send(id, kEchoTag, Bytes{*received_ ? std::uint8_t{1} : std::uint8_t{0}});
    }
  }

  void finish(const sim::Inbox& inbox, sim::PartyContext& /*ctx*/) override {
    std::vector<bool> echoed(n_, false);
    for (const sim::Message& m : inbox) {
      if (m.tag != kEchoTag || m.payload.size() != 1) continue;
      if (m.from >= n_ || echoed[m.from]) continue;  // one echo per party
      echoed[m.from] = true;
      ++echoes_[m.payload[0] != 0 ? 1 : 0];
    }
    done_ = true;
  }

  [[nodiscard]] BitVec output() const override {
    BitVec b(n_);
    const std::size_t quorum = n_ - t_;
    if (done_) {
      if (echoes_[1] >= quorum)
        b.set(sender_, true);
      // echoes_[0] >= quorum (or no quorum at all) leaves the default 0.
    }
    return b;
  }

 private:
  sim::PartyId sender_;
  std::size_t t_;
  bool input_;
  std::size_t n_ = 0;
  std::optional<bool> received_;
  std::array<std::size_t, 2> echoes_{0, 0};
  bool done_ = false;
};

}  // namespace

std::unique_ptr<sim::Party> EchoBroadcast::make_party(sim::PartyId /*id*/, bool input,
                                                      const sim::ProtocolParams& /*params*/) const {
  return std::make_unique<EchoParty>(sender_, t_, input);
}

}  // namespace simulcast::broadcast
