// Echo ("crusader"-style) broadcast: a cheap 2-round single-sender
// broadcast over point-to-point channels.
//
// Round 0: the sender sends its bit to everyone.  Round 1: every party
// echoes what it received to everyone.  A party outputs v iff at least
// n - t parties (counting itself) echoed v; otherwise the default 0.
//
// This primitive is deliberately weaker than Dolev-Strong: with an honest
// sender it is correct and consistent, but an equivocating corrupted sender
// can drive different honest parties to different outputs when echo
// quorums overlap (demonstrated in tests/broadcast/echo_broadcast_test.cpp).
// It exists as the negative control for the consistency property of
// Definition 3.1 and as the cheap-path ablation in the E9 cost benchmarks.
#pragma once

#include "sim/protocol.h"

namespace simulcast::broadcast {

class EchoBroadcast final : public sim::ParallelBroadcastProtocol {
 public:
  EchoBroadcast(sim::PartyId sender, std::size_t t) : sender_(sender), t_(t) {}

  [[nodiscard]] std::string name() const override { return "echo-broadcast"; }
  [[nodiscard]] std::size_t rounds(std::size_t /*n*/) const override { return 2; }
  [[nodiscard]] std::size_t max_corruptions(std::size_t /*n*/) const override { return t_; }
  [[nodiscard]] std::unique_ptr<sim::Party> make_party(
      sim::PartyId id, bool input, const sim::ProtocolParams& params) const override;

  [[nodiscard]] sim::PartyId sender() const noexcept { return sender_; }

 private:
  sim::PartyId sender_;
  std::size_t t_;
};

}  // namespace simulcast::broadcast
