// Sequential parallel broadcast implemented WITHOUT the broadcast-channel
// primitive: n back-to-back Dolev-Strong instances over point-to-point
// links with hash-based signatures.
//
// The main protocols use the simulator's broadcast channel, which the model
// of Section 3.1 provides; this protocol demonstrates the full substrate
// stack the paper presupposes - that the channel itself is realizable from
// point-to-point links plus authentication (interactive consistency, Pease
// et al. [18]).  Block i occupies rounds [i*(t+2), (i+1)*(t+2)) and runs
// broadcast/dolev_strong.h with sender i; the output vector collects each
// block's agreed bit.
//
// Like plain seq-broadcast it is a correct, consistent parallel broadcast
// and deliberately NOT simultaneous (later senders hear earlier values); it
// exists for the substrate demonstration and the E9 cost comparison, where
// its signature traffic quantifies what the broadcast-channel abstraction
// hides.
#pragma once

#include <algorithm>

#include "broadcast/dolev_strong.h"
#include "sim/protocol.h"

namespace simulcast::protocols {

class SeqDolevStrongProtocol final : public sim::ParallelBroadcastProtocol {
 public:
  /// Tolerates t corruptions per instance; block length is t + 2.
  explicit SeqDolevStrongProtocol(std::size_t t) : t_(t) {}

  [[nodiscard]] std::string name() const override { return "seq-broadcast-ds"; }
  [[nodiscard]] std::size_t rounds(std::size_t n) const override { return n * (t_ + 2); }
  [[nodiscard]] std::size_t max_corruptions(std::size_t n) const override {
    return std::min(t_, n - 1);  // at least one honest party must remain
  }
  [[nodiscard]] std::unique_ptr<sim::Party> make_party(
      sim::PartyId id, bool input, const sim::ProtocolParams& params) const override;

  [[nodiscard]] std::size_t block_length() const noexcept { return t_ + 2; }

 private:
  std::size_t t_;
};

}  // namespace simulcast::protocols
