#include "protocols/theta.h"

#include "base/error.h"

namespace simulcast::protocols {

BitVec theta_g(const std::vector<ThetaInput>& v, bool r) {
  const std::size_t n = v.size();
  std::vector<std::size_t> lit;
  for (std::size_t i = 0; i < n; ++i)
    if (v[i].b) lit.push_back(i);

  BitVec w(n);
  for (std::size_t i = 0; i < n; ++i) w.set(i, v[i].x);
  if (lit.size() != 2) return w;

  const std::size_t l1 = lit[0];
  const std::size_t l2 = lit[1];
  bool y = false;
  for (std::size_t i = 0; i < n; ++i)
    if (i != l1 && i != l2) y = y != v[i].x;
  w.set(l1, r);
  w.set(l2, r != y);
  return w;
}

Bytes encode_theta_input(ThetaInput in) {
  ByteWriter w;
  w.u8(in.x ? 1 : 0);
  w.u8(in.b ? 1 : 0);
  return w.take();
}

std::optional<ThetaInput> decode_theta_input(const Bytes& payload) {
  if (payload.size() != 2 || payload[0] > 1 || payload[1] > 1) return std::nullopt;
  return ThetaInput{payload[0] == 1, payload[1] == 1};
}

void ThetaIdealFunctionality::on_round(sim::Round round, const sim::Inbox& inbox,
                                       crypto::HmacDrbg& drbg,
                                       sim::FunctionalitySender& sender) {
  if (round != 1) return;
  inputs_.assign(n_, ThetaInput{});  // default (0, 0) for silent parties
  std::vector<bool> seen(n_, false);
  for (const sim::Message& m : inbox) {
    if (m.tag != kThetaInputTag || m.from >= n_ || seen[m.from]) continue;
    const auto decoded = decode_theta_input(m.payload);
    if (!decoded.has_value()) continue;
    seen[m.from] = true;
    inputs_[m.from] = *decoded;
  }
  const bool r = (drbg.next_u64() & 1u) != 0;
  const BitVec w = theta_g(inputs_, r);
  ByteWriter writer;
  writer.u64(w.packed());
  const Bytes payload = writer.take();
  for (sim::PartyId id = 0; id < n_; ++id) sender.send(id, kThetaOutputTag, payload);
}

namespace {

class FlawedPiGParty final : public sim::Party {
 public:
  explicit FlawedPiGParty(bool input) : input_(input) {}

  void begin(sim::PartyContext& ctx) override { n_ = ctx.n(); }

  void on_round(sim::Round round, const sim::Inbox& /*inbox*/,
                sim::PartyContext& ctx) override {
    if (round == 0)
      ctx.send(sim::kFunctionality, kThetaInputTag, encode_theta_input({input_, false}));
  }

  void finish(const sim::Inbox& inbox, sim::PartyContext& /*ctx*/) override {
    for (const sim::Message& m : inbox) {
      if (m.tag != kThetaOutputTag || m.from != sim::kFunctionality) continue;
      if (m.payload.size() != 8) continue;
      ByteReader r(m.payload);
      result_ = BitVec(n_, r.u64());
      done_ = true;
      return;
    }
  }

  [[nodiscard]] BitVec output() const override {
    if (!done_) throw ProtocolError("FlawedPiGParty: no Theta output received");
    return result_;
  }

 private:
  bool input_;
  std::size_t n_ = 0;
  BitVec result_;
  bool done_ = false;
};

}  // namespace

std::unique_ptr<sim::Party> FlawedPiGProtocol::make_party(
    sim::PartyId /*id*/, bool input, const sim::ProtocolParams& /*params*/) const {
  return std::make_unique<FlawedPiGParty>(input);
}

std::unique_ptr<sim::TrustedFunctionality> FlawedPiGProtocol::make_functionality(
    const sim::ProtocolParams& params) const {
  return std::make_unique<ThetaIdealFunctionality>(params.n);
}

}  // namespace simulcast::protocols
