// Chor-Rabin-style simultaneous broadcast (PODC 1987 [8]): "achieving
// independence in logarithmic number of rounds".
//
// All parties deal their Pedersen-VSS commitments in parallel (round 0).
// Then every dealer proves *knowledge* of its committed secret with an
// interactive sigma protocol (crypto/sigma.h); the proofs are scheduled in
// ceil(log2 n) batches of three rounds each - the logarithmic schedule that
// gives the protocol its name in the paper's narrative.  A dealer whose
// proof fails is disqualified during the commit phase, before anything is
// revealed, which neutralizes commitment-copying and mauling.  The common
// complain / justify / reveal tail completes the protocol:
//   rounds = 1 + 3*ceil(log2 n) + 3.
// Tolerates t < n/2 corruptions.
#pragma once

#include "protocols/vss_core.h"

namespace simulcast::protocols {

class ChorRabinProtocol final : public sim::ParallelBroadcastProtocol {
 public:
  [[nodiscard]] std::string name() const override { return "chor-rabin"; }
  [[nodiscard]] std::size_t rounds(std::size_t n) const override {
    return 4 + 3 * pok_batches(n);
  }
  [[nodiscard]] std::size_t max_corruptions(std::size_t n) const override {
    return vss_threshold(n);
  }
  [[nodiscard]] std::unique_ptr<sim::Party> make_party(
      sim::PartyId id, bool input, const sim::ProtocolParams& params) const override;

  /// ceil(log2 n), at least 1.
  [[nodiscard]] static std::size_t pok_batches(std::size_t n);
  [[nodiscard]] static VssSchedule schedule(std::size_t n);
};

}  // namespace simulcast::protocols
