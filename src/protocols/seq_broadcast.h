// The "simplest instantiation" of parallel broadcast from Section 3.2 of
// the paper: n sequential single-sender broadcasts, party i announcing in
// round i.
//
// It satisfies consistency and correctness but deliberately NOT
// independence: a rushing corrupted party scheduled after an honest victim
// has already heard the victim's bit and can copy it
// (adversary/copy_last.h), which is exactly the attack the paper uses to
// motivate simultaneous broadcast.  This protocol is the negative control
// in experiments E5/E6 and the baseline in E9.
#pragma once

#include "sim/protocol.h"

namespace simulcast::protocols {

/// Message tag used by the per-round announcements (payload: 1 byte, 0/1).
inline const sim::Tag kSeqAnnounceTag{"seq-announce"};

class SeqBroadcastProtocol final : public sim::ParallelBroadcastProtocol {
 public:
  [[nodiscard]] std::string name() const override { return "seq-broadcast"; }
  [[nodiscard]] std::size_t rounds(std::size_t n) const override { return n; }
  [[nodiscard]] std::unique_ptr<sim::Party> make_party(
      sim::PartyId id, bool input, const sim::ProtocolParams& params) const override;
};

}  // namespace simulcast::protocols
