#include "protocols/naive_commit_reveal.h"

#include <map>
#include <optional>

#include "base/error.h"
#include "crypto/commitment.h"

namespace simulcast::protocols {

namespace {

const crypto::CommitmentScheme& default_scheme() {
  static const crypto::HashCommitmentScheme scheme;
  return scheme;
}

class NcrParty final : public sim::Party {
 public:
  NcrParty(bool input, const crypto::CommitmentScheme& scheme) : input_(input), scheme_(&scheme) {}

  void begin(sim::PartyContext& ctx) override {
    n_ = ctx.n();
    commitments_.assign(n_, std::nullopt);
    result_ = BitVec(n_);
  }

  void on_round(sim::Round round, const sim::Inbox& inbox,
                sim::PartyContext& ctx) override {
    if (round == 0) {
      const Bytes message{input_ ? std::uint8_t{1} : std::uint8_t{0}};
      opening_ = scheme_->make_opening(message, ctx.drbg());
      const crypto::Commitment c = scheme_->commit(ncr_label(ctx.id()), *opening_);
      commitments_[ctx.id()] = c;
      ctx.broadcast(kNcrCommitTag, c.value);
      return;
    }
    // round == 1: record commitments, broadcast opening.
    record_commitments(inbox);
    ByteWriter w = ctx.writer();
    w.bytes(opening_->message);
    w.bytes(opening_->randomness);
    ctx.broadcast(kNcrOpenTag, w.take());
    result_.set(ctx.id(), input_);
  }

  void finish(const sim::Inbox& inbox, sim::PartyContext& /*ctx*/) override {
    for (const sim::Message& m : inbox) {
      if (m.to != sim::kBroadcast) continue;  // channel binding (consistency)
      if (m.tag != kNcrOpenTag || m.from >= n_ || m.round != 1) continue;
      if (!commitments_[m.from].has_value()) continue;
      if (opened_[m.from]) continue;
      opened_[m.from] = true;
      try {
        ByteReader r(m.payload);
        crypto::Opening op;
        op.message = r.bytes();
        op.randomness = r.bytes();
        if (op.message.size() != 1 || op.message[0] > 1) continue;
        if (!scheme_->verify(ncr_label(m.from), *commitments_[m.from], op)) continue;
        result_.set(m.from, op.message[0] == 1);
      } catch (const Error&) {
        // Malformed opening: coordinate stays at the default 0.
      }
    }
    done_ = true;
  }

  [[nodiscard]] BitVec output() const override {
    if (!done_) throw ProtocolError("NcrParty: output before finish");
    return result_;
  }

 private:
  void record_commitments(const sim::Inbox& inbox) {
    for (const sim::Message& m : inbox) {
      if (m.to != sim::kBroadcast) continue;  // channel binding (consistency)
      if (m.tag != kNcrCommitTag || m.from >= n_ || m.round != 0) continue;
      if (commitments_[m.from].has_value()) continue;
      commitments_[m.from] = crypto::Commitment{m.payload};
    }
  }

  bool input_;
  const crypto::CommitmentScheme* scheme_;
  std::size_t n_ = 0;
  std::optional<crypto::Opening> opening_;
  std::vector<std::optional<crypto::Commitment>> commitments_;
  std::map<sim::PartyId, bool> opened_;
  BitVec result_;
  bool done_ = false;
};

}  // namespace

std::string ncr_label(sim::PartyId id) {
  return "simulcast/ncr/party:" + std::to_string(id);
}

std::unique_ptr<sim::Party> NaiveCommitRevealProtocol::make_party(
    sim::PartyId /*id*/, bool input, const sim::ProtocolParams& params) const {
  const crypto::CommitmentScheme& scheme =
      params.commitments != nullptr ? *params.commitments : default_scheme();
  return std::make_unique<NcrParty>(input, scheme);
}

}  // namespace simulcast::protocols
