#include "protocols/vss_core.h"

#include <algorithm>

#include "base/error.h"

namespace simulcast::protocols {

namespace {

Bytes encode_justify(sim::PartyId complainer, const crypto::PedersenShare& share) {
  ByteWriter w;
  w.u64(complainer);
  w.bytes(crypto::encode_pedersen_share(share));
  return w.take();
}

Bytes encode_reveal(sim::PartyId dealer, const crypto::PedersenShare& share) {
  ByteWriter w;
  w.u64(dealer);
  w.bytes(crypto::encode_pedersen_share(share));
  return w.take();
}

}  // namespace

void VssSchedule::validate() const {
  if (n == 0 || n > kMaxBits) throw UsageError("VssSchedule: bad n");
  if (threshold >= (n + 1) / 2) throw UsageError("VssSchedule: threshold must satisfy t < n/2");
  if (deal_round.size() != n) throw UsageError("VssSchedule: deal_round size != n");
  for (sim::Round r : deal_round)
    if (r >= complaint_round) throw UsageError("VssSchedule: deal after complaint round");
  if (pok.has_value()) {
    if (pok->size() != n) throw UsageError("VssSchedule: pok size != n");
    for (std::size_t d = 0; d < n; ++d) {
      const PokRounds& p = (*pok)[d];
      if (p.commit <= deal_round[d] || p.challenge != p.commit + 1 ||
          p.response != p.challenge + 1 || p.response >= complaint_round)
        throw UsageError("VssSchedule: malformed pok rounds");
    }
  }
  if (!(complaint_round < justify_round && justify_round < reconstruct_round &&
        reconstruct_round < total_rounds))
    throw UsageError("VssSchedule: phases out of order");
}

VssProtocolParty::VssProtocolParty(VssSchedule schedule, bool input)
    : schedule_(std::move(schedule)), input_(input), group_(&crypto::SchnorrGroup::standard()) {
  schedule_.validate();
}

void VssProtocolParty::begin(sim::PartyContext& ctx) {
  me_ = ctx.id();
  dealers_.assign(schedule_.n, DealerState{});
  result_ = BitVec(schedule_.n);
}

void VssProtocolParty::deal(sim::PartyContext& ctx) {
  const crypto::Zq secret{input_ ? std::uint64_t{1} : std::uint64_t{0}, group_->q()};
  my_deal_ = vss_.deal(secret, schedule_.threshold, schedule_.n, ctx.drbg());
  my_secret_ = secret;
  // The blinding constant term f'(0) is recoverable from the blinding
  // polynomial; PedersenVss does not expose it, so recompute it from the
  // dealt shares via Lagrange on the blinding coordinates.
  std::vector<crypto::Share<crypto::Zq>> blind_shares;
  blind_shares.reserve(schedule_.threshold + 1);
  for (std::size_t i = 0; i <= schedule_.threshold; ++i)
    blind_shares.push_back({my_deal_->shares[i].x, my_deal_->shares[i].blinding});
  my_secret_blinding_ = crypto::shamir_reconstruct(blind_shares);

  ctx.broadcast(kVssCommitTag, crypto::encode_group_elements(my_deal_->commitments));
  for (std::size_t j = 0; j < schedule_.n; ++j) {
    if (j == me_) continue;
    ctx.send(j, kVssShareTag, crypto::encode_pedersen_share(my_deal_->shares[j]));
  }
  // My own share and commitments, recorded directly.
  DealerState& self = dealers_[me_];
  self.commitments = my_deal_->commitments;
  self.my_share = my_deal_->shares[me_];
}

void VssProtocolParty::add_public_share(DealerState& state, const crypto::PedersenShare& share) {
  if (!state.commitments.has_value()) return;
  if (!vss_.verify_share(*state.commitments, share)) return;
  if (!state.public_share_points.insert(share.x).second) return;
  state.public_shares.push_back(share);
}

void VssProtocolParty::record(const sim::Inbox& inbox, sim::PartyContext& ctx) {
  for (const sim::Message& m : inbox) {
    try {
      // Channel binding: every tag except the private share transfer is a
      // broadcast-channel message.  Accepting a point-to-point copy of a
      // "broadcast" would let the adversary equivocate - show different
      // commitments/complaints/reveals to different parties - and break
      // consistency (found by the fuzzing suite).
      if (m.tag != kVssShareTag && m.to != sim::kBroadcast) continue;
      if (m.tag == kVssCommitTag) {
        if (m.from >= schedule_.n || m.round != schedule_.deal_round[m.from]) continue;
        DealerState& dealer = dealers_[m.from];
        if (dealer.commitments.has_value()) continue;  // first wins
        auto elems = crypto::decode_group_elements(m.payload);
        if (!vss_.verify_commitments(elems, schedule_.threshold)) continue;
        dealer.commitments = std::move(elems);
      } else if (m.tag == kVssShareTag) {
        if (m.from >= schedule_.n || m.round != schedule_.deal_round[m.from] || m.to != me_)
          continue;
        DealerState& dealer = dealers_[m.from];
        if (dealer.my_share.has_value()) continue;
        const auto share = crypto::decode_pedersen_share(m.payload, group_->q());
        if (share.x != me_ + 1) continue;
        // Stored even before the commitments arrive in the same round's
        // batch: validity is checked where the share is used.
        dealer.my_share = share;
      } else if (m.tag == kPokCommitTag) {
        if (!schedule_.pok.has_value() || m.from >= schedule_.n) continue;
        if (m.round != (*schedule_.pok)[m.from].commit) continue;
        DealerState& dealer = dealers_[m.from];
        if (dealer.pok_a.has_value() || m.payload.size() != 8) continue;
        ByteReader r(m.payload);
        dealer.pok_a = r.u64();
      } else if (m.tag == kPokChallengeTag) {
        if (m.payload.size() != 8) continue;
        ByteReader r(m.payload);
        auto& per_round = challenge_contributions_[m.round];
        per_round.emplace(m.from, r.u64());  // first contribution wins
      } else if (m.tag == kPokResponseTag) {
        if (!schedule_.pok.has_value() || m.from >= schedule_.n) continue;
        if (m.round != (*schedule_.pok)[m.from].response) continue;
        DealerState& dealer = dealers_[m.from];
        if (dealer.pok_response.has_value() || m.payload.size() != 24) continue;
        ByteReader r(m.payload);
        crypto::SigmaResponse resp;
        resp.a = r.u64();
        resp.z1 = crypto::Zq{r.u64(), group_->q()};
        resp.z2 = crypto::Zq{r.u64(), group_->q()};
        dealer.pok_response = resp;
      } else if (m.tag == kVssComplainTag) {
        if (m.from >= schedule_.n || m.round != schedule_.complaint_round) continue;
        if (m.payload.size() != 8) continue;
        ByteReader r(m.payload);
        const std::uint64_t mask = r.u64();
        for (std::size_t d = 0; d < schedule_.n; ++d) {
          if ((mask >> d) & 1u) dealers_[d].complaints.emplace(m.from, false);
        }
      } else if (m.tag == kVssJustifyTag) {
        if (m.from >= schedule_.n || m.round != schedule_.justify_round) continue;
        DealerState& dealer = dealers_[m.from];  // dealers justify themselves
        ByteReader r(m.payload);
        const sim::PartyId complainer = r.u64();
        const auto share = crypto::decode_pedersen_share(r.bytes(), group_->q());
        if (share.x != complainer + 1) continue;
        auto it = dealer.complaints.find(complainer);
        if (it == dealer.complaints.end()) continue;
        if (!dealer.commitments.has_value()) continue;
        if (!vss_.verify_share(*dealer.commitments, share)) continue;
        it->second = true;
        add_public_share(dealer, share);
        if (complainer == me_ && !dealer.my_share.has_value()) dealer.my_share = share;
      } else if (m.tag == kVssRevealTag) {
        if (m.from >= schedule_.n || m.round != schedule_.reconstruct_round) continue;
        ByteReader r(m.payload);
        const std::uint64_t dealer_id = r.u64();
        if (dealer_id >= schedule_.n) continue;
        const auto share = crypto::decode_pedersen_share(r.bytes(), group_->q());
        if (share.x != m.from + 1) continue;  // a party reveals only its own share
        add_public_share(dealers_[dealer_id], share);
      }
    } catch (const Error&) {
      // Malformed adversarial message: ignored; the sender's coordinate
      // degrades toward the default 0 on its own.
    }
  }
  (void)ctx;
}

crypto::Zq VssProtocolParty::joint_challenge(sim::Round challenge_round) const {
  crypto::Zq c{0, group_->q()};
  const auto it = challenge_contributions_.find(challenge_round);
  if (it != challenge_contributions_.end()) {
    for (const auto& [from, contribution] : it->second) c += crypto::Zq{contribution, group_->q()};
  }
  const auto mine = my_contributions_.find(challenge_round);
  if (mine != my_contributions_.end()) c += crypto::Zq{mine->second, group_->q()};
  return c;
}

void VssProtocolParty::decide_disqualifications() {
  for (std::size_t d = 0; d < schedule_.n; ++d) {
    DealerState& dealer = dealers_[d];
    if (!dealer.commitments.has_value()) {
      dealer.disqualified = true;
      continue;
    }
    if (schedule_.pok.has_value()) {
      const PokRounds& rounds = (*schedule_.pok)[d];
      if (!dealer.pok_a.has_value() || !dealer.pok_response.has_value() ||
          dealer.pok_response->a != *dealer.pok_a ||
          !crypto::sigma_verify(*group_, dealer.commitments->front(),
                                joint_challenge(rounds.challenge), *dealer.pok_response)) {
        dealer.disqualified = true;
        continue;
      }
    }
    for (const auto& [complainer, justified] : dealer.complaints) {
      if (!justified) {
        dealer.disqualified = true;
        break;
      }
    }
  }
}

void VssProtocolParty::on_round(sim::Round round, const sim::Inbox& inbox,
                                sim::PartyContext& ctx) {
  record(inbox, ctx);

  if (round == schedule_.deal_round[me_]) deal(ctx);

  if (schedule_.pok.has_value()) {
    const PokRounds& mine = (*schedule_.pok)[me_];
    if (round == mine.commit && my_secret_.has_value()) {
      my_pok_ = crypto::sigma_commit(*group_, ctx.drbg());
      ByteWriter w = ctx.writer();
      w.u64(my_pok_->a);
      ctx.broadcast(kPokCommitTag, w.take());
      dealers_[me_].pok_a = my_pok_->a;
    }
    // Contribute to every batch's joint challenge (one broadcast per
    // distinct challenge round).
    bool is_challenge_round = false;
    for (const PokRounds& p : *schedule_.pok)
      if (p.challenge == round) is_challenge_round = true;
    if (is_challenge_round && !my_contributions_.contains(round)) {
      const std::uint64_t contribution = ctx.drbg().below(group_->q());
      my_contributions_[round] = contribution;
      ByteWriter w = ctx.writer();
      w.u64(contribution);
      ctx.broadcast(kPokChallengeTag, w.take());
    }
    if (round == mine.response && my_pok_.has_value()) {
      const crypto::Zq c = joint_challenge(mine.challenge);
      const crypto::SigmaResponse resp =
          crypto::sigma_respond(*my_pok_, c, *my_secret_, *my_secret_blinding_);
      ByteWriter w = ctx.writer();
      w.u64(resp.a);
      w.u64(resp.z1.value());
      w.u64(resp.z2.value());
      ctx.broadcast(kPokResponseTag, w.take());
      dealers_[me_].pok_response = resp;
    }
  }

  if (round == schedule_.complaint_round) {
    std::uint64_t mask = 0;
    for (std::size_t d = 0; d < schedule_.n; ++d) {
      if (d == me_) continue;
      const DealerState& dealer = dealers_[d];
      const bool bad_commit = !dealer.commitments.has_value();
      const bool bad_share = !dealer.my_share.has_value() ||
                             (dealer.commitments.has_value() &&
                              !vss_.verify_share(*dealer.commitments, *dealer.my_share));
      if (bad_commit || bad_share) mask |= (std::uint64_t{1} << d);
    }
    // Broadcasts are not self-delivered, so register my own complaints
    // locally too - every party must evaluate the same complaint set.
    for (std::size_t d = 0; d < schedule_.n; ++d)
      if ((mask >> d) & 1u) dealers_[d].complaints.emplace(me_, false);
    ByteWriter w = ctx.writer();
    w.u64(mask);
    ctx.broadcast(kVssComplainTag, w.take());
  }

  if (round == schedule_.justify_round && my_deal_.has_value()) {
    for (auto& [complainer, justified] : dealers_[me_].complaints) {
      if (complainer >= schedule_.n) continue;
      ctx.broadcast(kVssJustifyTag, encode_justify(complainer, my_deal_->shares[complainer]));
      // Mark my own justification locally (no self-delivery of broadcasts).
      justified = true;
      add_public_share(dealers_[me_], my_deal_->shares[complainer]);
    }
  }

  if (round == schedule_.reconstruct_round) {
    decide_disqualifications();
    for (std::size_t d = 0; d < schedule_.n; ++d) {
      const DealerState& dealer = dealers_[d];
      if (dealer.disqualified || !dealer.my_share.has_value()) continue;
      if (!vss_.verify_share(*dealer.commitments, *dealer.my_share)) continue;
      ctx.broadcast(kVssRevealTag, encode_reveal(d, *dealer.my_share));
    }
  }
}

void VssProtocolParty::finish(const sim::Inbox& inbox, sim::PartyContext& ctx) {
  record(inbox, ctx);
  for (std::size_t d = 0; d < schedule_.n; ++d) {
    DealerState& dealer = dealers_[d];
    if (dealer.disqualified) continue;  // announced 0
    // Pool of verifying shares: public (justified + revealed) plus my own.
    std::vector<crypto::PedersenShare> pool = dealer.public_shares;
    if (dealer.my_share.has_value() && dealer.commitments.has_value() &&
        !dealer.public_share_points.contains(dealer.my_share->x) &&
        vss_.verify_share(*dealer.commitments, *dealer.my_share))
      pool.push_back(*dealer.my_share);
    if (pool.size() < schedule_.threshold + 1) continue;  // unreconstructable -> 0
    pool.resize(schedule_.threshold + 1);
    const crypto::Zq secret = vss_.reconstruct(pool);
    result_.set(d, secret.value() == 1);  // any other value -> default 0
  }
  decided_ = true;
}

BitVec VssProtocolParty::output() const {
  if (!decided_) throw ProtocolError("VssProtocolParty: output before finish");
  return result_;
}

}  // namespace simulcast::protocols
