#include "protocols/theta_mpc.h"

#include <map>
#include <optional>
#include <set>

#include "base/error.h"

namespace simulcast::protocols {

namespace {

using crypto::PedersenShare;
using crypto::PedersenVss;
using crypto::Zq;

struct TwinShares {
  PedersenShare x;
  PedersenShare rho;
};

Bytes encode_twin(const TwinShares& tw) {
  ByteWriter w;
  w.bytes(crypto::encode_pedersen_share(tw.x));
  w.bytes(crypto::encode_pedersen_share(tw.rho));
  return w.take();
}

TwinShares decode_twin(const Bytes& data, std::uint64_t q) {
  ByteReader r(data);
  TwinShares tw;
  tw.x = crypto::decode_pedersen_share(r.bytes(), q);
  tw.rho = crypto::decode_pedersen_share(r.bytes(), q);
  if (!r.done()) throw ProtocolError("decode_twin: trailing bytes");
  return tw;
}

class ThetaMpcParty final : public sim::Party {
 public:
  ThetaMpcParty(std::size_t n, bool input, bool lit)
      : n_(n), t_((n - 1) / 2), input_(input), lit_(lit),
        group_(&crypto::SchnorrGroup::standard()) {}

  void begin(sim::PartyContext& ctx) override {
    me_ = ctx.id();
    dealers_.assign(n_, DealerState{});
    bits_.assign(n_, false);
    result_ = BitVec(n_);
  }

  void on_round(sim::Round round, const sim::Inbox& inbox,
                sim::PartyContext& ctx) override {
    record(inbox);
    switch (round) {
      case 0: deal(ctx); break;
      case 1: complain(ctx); break;
      case 2: justify(ctx); break;
      case 3: reveal(ctx); break;
      default: break;
    }
  }

  void finish(const sim::Inbox& inbox, sim::PartyContext& /*ctx*/) override {
    record(inbox);
    compute_output();
    decided_ = true;
  }

  [[nodiscard]] BitVec output() const override {
    if (!decided_) throw ProtocolError("ThetaMpcParty: output before finish");
    return result_;
  }

 private:
  enum class Kind : std::uint8_t { kX = 0, kRho = 1 };

  struct DealerState {
    bool bit_seen = false;                   ///< a round-0 b broadcast arrived
    std::optional<std::vector<std::uint64_t>> commit_x;
    std::optional<std::vector<std::uint64_t>> commit_rho;
    std::optional<TwinShares> my_shares;
    std::vector<PedersenShare> public_x;
    std::vector<PedersenShare> public_rho;
    std::set<std::uint64_t> points_x;
    std::set<std::uint64_t> points_rho;
    std::map<sim::PartyId, bool> complaints;
    bool disqualified = false;
  };

  void deal(sim::PartyContext& ctx) {
    // Auxiliary bit in the clear.
    bits_[me_] = lit_;
    ctx.broadcast(kTmpcBitTag, Bytes{lit_ ? std::uint8_t{1} : std::uint8_t{0}});
    dealers_[me_].bit_seen = true;

    const Zq x{input_ ? std::uint64_t{1} : std::uint64_t{0}, group_->q()};
    const Zq rho{ctx.drbg().below(2), group_->q()};
    my_deal_x_ = vss_.deal(x, t_, n_, ctx.drbg());
    my_deal_rho_ = vss_.deal(rho, t_, n_, ctx.drbg());

    ByteWriter w = ctx.writer();
    w.bytes(crypto::encode_group_elements(my_deal_x_->commitments));
    w.bytes(crypto::encode_group_elements(my_deal_rho_->commitments));
    ctx.broadcast(kTmpcCommitTag, w.take());
    for (std::size_t j = 0; j < n_; ++j) {
      if (j == me_) continue;
      ctx.send(j, kTmpcShareTag,
               encode_twin({my_deal_x_->shares[j], my_deal_rho_->shares[j]}));
    }
    DealerState& self = dealers_[me_];
    self.commit_x = my_deal_x_->commitments;
    self.commit_rho = my_deal_rho_->commitments;
    self.my_shares = TwinShares{my_deal_x_->shares[me_], my_deal_rho_->shares[me_]};
  }

  [[nodiscard]] bool shares_ok(const DealerState& d) const {
    if (!d.commit_x.has_value() || !d.commit_rho.has_value() || !d.my_shares.has_value())
      return false;
    return vss_.verify_share(*d.commit_x, d.my_shares->x) &&
           vss_.verify_share(*d.commit_rho, d.my_shares->rho);
  }

  void complain(sim::PartyContext& ctx) {
    std::uint64_t mask = 0;
    for (std::size_t d = 0; d < n_; ++d) {
      if (d == me_) continue;
      if (!shares_ok(dealers_[d])) mask |= (std::uint64_t{1} << d);
    }
    for (std::size_t d = 0; d < n_; ++d)
      if ((mask >> d) & 1u) dealers_[d].complaints.emplace(me_, false);
    ByteWriter w = ctx.writer();
    w.u64(mask);
    ctx.broadcast(kTmpcComplainTag, w.take());
  }

  void justify(sim::PartyContext& ctx) {
    if (!my_deal_x_.has_value()) return;
    for (auto& [complainer, justified] : dealers_[me_].complaints) {
      if (complainer >= n_) continue;
      ByteWriter w = ctx.writer();
      w.u64(complainer);
      w.bytes(encode_twin({my_deal_x_->shares[complainer], my_deal_rho_->shares[complainer]}));
      ctx.broadcast(kTmpcJustifyTag, w.take());
      justified = true;
      add_public(dealers_[me_], Kind::kX, my_deal_x_->shares[complainer]);
      add_public(dealers_[me_], Kind::kRho, my_deal_rho_->shares[complainer]);
    }
  }

  void decide_disqualifications() {
    for (std::size_t d = 0; d < n_; ++d) {
      DealerState& dealer = dealers_[d];
      if (!dealer.commit_x.has_value() || !dealer.commit_rho.has_value()) {
        dealer.disqualified = true;
        continue;
      }
      for (const auto& [complainer, justified] : dealer.complaints) {
        if (!justified) {
          dealer.disqualified = true;
          break;
        }
      }
    }
  }

  /// L = lit dealers; the masked branch triggers at |L| == 2.
  [[nodiscard]] std::vector<std::size_t> lit_set() const {
    std::vector<std::size_t> lit;
    for (std::size_t d = 0; d < n_; ++d)
      if (bits_[d]) lit.push_back(d);
    return lit;
  }

  [[nodiscard]] bool x_is_output(std::size_t dealer) const {
    const auto lit = lit_set();
    if (lit.size() != 2) return true;
    return dealer != lit[0] && dealer != lit[1];
  }

  void reveal(sim::PartyContext& ctx) {
    decide_disqualifications();
    for (std::size_t d = 0; d < n_; ++d) {
      const DealerState& dealer = dealers_[d];
      if (dealer.disqualified || !dealer.my_shares.has_value()) continue;
      if (!shares_ok(dealer)) continue;
      const auto send_reveal = [&](Kind kind, const PedersenShare& share) {
        ByteWriter w = ctx.writer();
        w.u64(d);
        w.u8(static_cast<std::uint8_t>(kind));
        w.bytes(crypto::encode_pedersen_share(share));
        ctx.broadcast(kTmpcRevealTag, w.take());
      };
      send_reveal(Kind::kRho, dealer.my_shares->rho);
      if (x_is_output(d)) send_reveal(Kind::kX, dealer.my_shares->x);
    }
  }

  void add_public(DealerState& dealer, Kind kind, const PedersenShare& share) {
    const auto& commitments = kind == Kind::kX ? dealer.commit_x : dealer.commit_rho;
    if (!commitments.has_value()) return;
    if (!vss_.verify_share(*commitments, share)) return;
    auto& points = kind == Kind::kX ? dealer.points_x : dealer.points_rho;
    if (!points.insert(share.x).second) return;
    (kind == Kind::kX ? dealer.public_x : dealer.public_rho).push_back(share);
  }

  void record(const sim::Inbox& inbox) {
    for (const sim::Message& m : inbox) {
      try {
        // Channel binding: only the share transfer is point-to-point;
        // everything else must arrive on the broadcast channel or an
        // adversary could equivocate and break consistency.
        if (m.tag != kTmpcShareTag && m.to != sim::kBroadcast) continue;
        if (m.tag == kTmpcBitTag) {
          if (m.from >= n_ || m.round != 0 || m.payload.size() != 1) continue;
          DealerState& d = dealers_[m.from];
          if (d.bit_seen) continue;
          d.bit_seen = true;
          bits_[m.from] = m.payload[0] != 0;
        } else if (m.tag == kTmpcCommitTag) {
          if (m.from >= n_ || m.round != 0) continue;
          DealerState& d = dealers_[m.from];
          if (d.commit_x.has_value()) continue;
          ByteReader r(m.payload);
          auto cx = crypto::decode_group_elements(r.bytes());
          auto cr = crypto::decode_group_elements(r.bytes());
          if (!vss_.verify_commitments(cx, t_) || !vss_.verify_commitments(cr, t_)) continue;
          d.commit_x = std::move(cx);
          d.commit_rho = std::move(cr);
        } else if (m.tag == kTmpcShareTag) {
          if (m.from >= n_ || m.round != 0 || m.to != me_) continue;
          DealerState& d = dealers_[m.from];
          if (d.my_shares.has_value()) continue;
          const TwinShares tw = decode_twin(m.payload, group_->q());
          if (tw.x.x != me_ + 1 || tw.rho.x != me_ + 1) continue;
          d.my_shares = tw;
        } else if (m.tag == kTmpcComplainTag) {
          if (m.from >= n_ || m.round != 1 || m.payload.size() != 8) continue;
          ByteReader r(m.payload);
          const std::uint64_t mask = r.u64();
          for (std::size_t d = 0; d < n_; ++d)
            if ((mask >> d) & 1u) dealers_[d].complaints.emplace(m.from, false);
        } else if (m.tag == kTmpcJustifyTag) {
          if (m.from >= n_ || m.round != 2) continue;
          DealerState& d = dealers_[m.from];
          ByteReader r(m.payload);
          const sim::PartyId complainer = r.u64();
          const TwinShares tw = decode_twin(r.bytes(), group_->q());
          if (tw.x.x != complainer + 1 || tw.rho.x != complainer + 1) continue;
          auto it = d.complaints.find(complainer);
          if (it == d.complaints.end()) continue;
          if (!d.commit_x.has_value() || !vss_.verify_share(*d.commit_x, tw.x) ||
              !vss_.verify_share(*d.commit_rho, tw.rho))
            continue;
          it->second = true;
          add_public(d, Kind::kX, tw.x);
          add_public(d, Kind::kRho, tw.rho);
          if (complainer == me_ && !d.my_shares.has_value()) d.my_shares = tw;
        } else if (m.tag == kTmpcRevealTag) {
          if (m.from >= n_ || m.round != 3) continue;
          ByteReader r(m.payload);
          const std::uint64_t dealer_id = r.u64();
          const auto kind = static_cast<Kind>(r.u8());
          if (dealer_id >= n_ || (kind != Kind::kX && kind != Kind::kRho)) continue;
          const PedersenShare share = crypto::decode_pedersen_share(r.bytes(), group_->q());
          if (share.x != m.from + 1) continue;
          add_public(dealers_[dealer_id], kind, share);
        }
      } catch (const Error&) {
        // Malformed adversarial message: ignore.
      }
    }
  }

  /// Reconstructs a dealer's secret of the given kind; nullopt when fewer
  /// than t+1 verifying shares are available.
  [[nodiscard]] std::optional<Zq> reconstruct(const DealerState& dealer, Kind kind) const {
    std::vector<PedersenShare> pool =
        kind == Kind::kX ? dealer.public_x : dealer.public_rho;
    const auto& points = kind == Kind::kX ? dealer.points_x : dealer.points_rho;
    if (dealer.my_shares.has_value() && !points.contains(me_ + 1)) {
      const PedersenShare& mine =
          kind == Kind::kX ? dealer.my_shares->x : dealer.my_shares->rho;
      const auto& commitments = kind == Kind::kX ? dealer.commit_x : dealer.commit_rho;
      if (commitments.has_value() && vss_.verify_share(*commitments, mine))
        pool.push_back(mine);
    }
    if (pool.size() < t_ + 1) return std::nullopt;
    pool.resize(t_ + 1);
    return vss_.reconstruct(pool);
  }

  void compute_output() {
    // r = parity of the sum of all qualified dealers' rho values.
    Zq rho_sum{0, group_->q()};
    std::vector<bool> xbit(n_, false);
    for (std::size_t d = 0; d < n_; ++d) {
      const DealerState& dealer = dealers_[d];
      if (dealer.disqualified) continue;
      if (const auto rho = reconstruct(dealer, Kind::kRho)) rho_sum += *rho;
      if (x_is_output(d)) {
        if (const auto x = reconstruct(dealer, Kind::kX)) xbit[d] = x->value() == 1;
      }
    }
    const bool r = (rho_sum.value() & 1u) != 0;

    const auto lit = lit_set();
    for (std::size_t d = 0; d < n_; ++d) result_.set(d, xbit[d]);
    if (lit.size() == 2) {
      bool y = false;
      for (std::size_t d = 0; d < n_; ++d)
        if (d != lit[0] && d != lit[1]) y = y != xbit[d];
      result_.set(lit[0], r);
      result_.set(lit[1], r != y);
    }
  }

  std::size_t n_;
  std::size_t t_;
  bool input_;
  bool lit_;
  const crypto::SchnorrGroup* group_;
  PedersenVss vss_;
  sim::PartyId me_ = 0;
  std::optional<crypto::PedersenDeal> my_deal_x_;
  std::optional<crypto::PedersenDeal> my_deal_rho_;
  std::vector<DealerState> dealers_;
  std::vector<bool> bits_;
  BitVec result_;
  bool decided_ = false;
};

}  // namespace

std::unique_ptr<sim::Party> ThetaMpcProtocol::make_party(
    sim::PartyId /*id*/, bool input, const sim::ProtocolParams& params) const {
  return std::make_unique<ThetaMpcParty>(params.n, input, /*lit=*/false);
}

std::unique_ptr<sim::Party> ThetaMpcProtocol::make_attack_party(
    sim::PartyId /*id*/, bool input, bool lit, const sim::ProtocolParams& params) const {
  return std::make_unique<ThetaMpcParty>(params.n, input, lit);
}

}  // namespace simulcast::protocols
