#include "protocols/seq_broadcast.h"

#include <optional>
#include <vector>

namespace simulcast::protocols {

namespace {

class SeqParty final : public sim::Party {
 public:
  explicit SeqParty(bool input) : input_(input) {}

  void begin(sim::PartyContext& ctx) override {
    n_ = ctx.n();
    heard_.assign(n_, std::nullopt);
  }

  void on_round(sim::Round round, const sim::Inbox& inbox,
                sim::PartyContext& ctx) override {
    record(inbox);
    if (round == ctx.id()) {
      heard_[ctx.id()] = input_;  // broadcasts are not self-delivered
      ctx.broadcast(kSeqAnnounceTag, Bytes{input_ ? std::uint8_t{1} : std::uint8_t{0}});
    }
  }

  void finish(const sim::Inbox& inbox, sim::PartyContext& /*ctx*/) override {
    record(inbox);
    done_ = true;
  }

  [[nodiscard]] BitVec output() const override {
    BitVec b(n_);
    if (done_)
      for (std::size_t i = 0; i < n_; ++i) b.set(i, heard_[i].value_or(false));
    return b;
  }

 private:
  void record(const sim::Inbox& inbox) {
    for (const sim::Message& m : inbox) {
      // Only the scheduled sender's announcement for its own round counts;
      // anything else (wrong round, wrong size, duplicate) is ignored and
      // the sender's coordinate falls back to the default 0 (footnote 2).
      // Announcements must arrive on the broadcast channel: accepting a
      // point-to-point copy would let an adversary show different
      // announcements to different parties and break consistency.
      if (m.to != sim::kBroadcast) continue;
      if (m.tag != kSeqAnnounceTag || m.payload.size() != 1) continue;
      if (m.from >= n_ || m.round != m.from) continue;
      if (heard_[m.from].has_value()) continue;
      heard_[m.from] = m.payload[0] != 0;
    }
  }

  bool input_;
  std::size_t n_ = 0;
  std::vector<std::optional<bool>> heard_;
  bool done_ = false;
};

}  // namespace

std::unique_ptr<sim::Party> SeqBroadcastProtocol::make_party(
    sim::PartyId /*id*/, bool input, const sim::ProtocolParams& /*params*/) const {
  return std::make_unique<SeqParty>(input);
}

}  // namespace simulcast::protocols
