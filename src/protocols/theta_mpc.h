// Θ realized as an actual honest-majority protocol (no trusted party):
// the MPC instantiation Claim 6.5 appeals to, at the message level.
//
// Observation that removes every multiplication gate from g: the outputs
// w_i = x_i for i outside L are *public* outputs, so y = XOR_{i not in L} x_i
// can be computed locally after those x_i are reconstructed; and the coin r
// only needs to be unpredictable-at-commit-time, so r = parity(sum of
// per-party shared random values rho_i) works - the sum is linear.  What
// remains is verifiable sharing, robust reconstruction, and NOT revealing
// x_l1, x_l2 when |L| = 2.  Concretely (4 rounds, t < n/2):
//
//   round 0  every party broadcasts its auxiliary bit b_i in the clear
//            (b is not private in g's functionality: Theta's output shape
//            depends on L, which corrupted parties pick anyway), and deals
//            TWO Pedersen-VSS sharings: its input x_i and a random rho_i.
//   round 1  complaints (bitmask; a complaint covers both sharings).
//   round 2  public justifications; unjustified dealer => disqualified.
//   round 3  reveal: every party broadcasts its verified shares of every
//            qualified dealer's rho, and of x_d only for dealers d whose x
//            is actually output (d not in L when |L| = 2).
//   output   per Theta's g: with |L| = 2 and l1 < l2,
//            w_l1 = r, w_l2 = r XOR y; otherwise w = reconstructed x.
//
// The announced-vector distribution matches the ideal functionality
// (protocols/theta.h) execution for execution - the ablation measured in
// bench_e4 - because r is uniform whenever one honest rho is, and all
// committed values are fixed before any reveal.
#pragma once

#include "crypto/vss.h"
#include "sim/protocol.h"

namespace simulcast::protocols {

inline const sim::Tag kTmpcBitTag{"tmpc-b"};
inline const sim::Tag kTmpcCommitTag{"tmpc-commit"};    // payload: x-vec || rho-vec
inline const sim::Tag kTmpcShareTag{"tmpc-share"};      // payload: x-share || rho-share
inline const sim::Tag kTmpcComplainTag{"tmpc-complain"};
inline const sim::Tag kTmpcJustifyTag{"tmpc-justify"};
inline const sim::Tag kTmpcRevealTag{"tmpc-reveal"};    // dealer, kind, share

/// Π_G over the real-MPC Θ.  Honest parties run with b = 0; the A*
/// adversary runs the same machine with b = 1 on two corrupted parties
/// (adversary::theta_mpc_parity_factory).
class ThetaMpcProtocol final : public sim::ParallelBroadcastProtocol {
 public:
  [[nodiscard]] std::string name() const override { return "flawed-pi-g-mpc"; }
  [[nodiscard]] std::size_t rounds(std::size_t /*n*/) const override { return 4; }
  [[nodiscard]] std::size_t max_corruptions(std::size_t n) const override { return (n - 1) / 2; }
  [[nodiscard]] std::unique_ptr<sim::Party> make_party(
      sim::PartyId id, bool input, const sim::ProtocolParams& params) const override;

  /// The A* hook: an honest-code machine whose auxiliary bit is forced to
  /// `lit` (Claim 6.6's controlled misbehaviour).
  [[nodiscard]] std::unique_ptr<sim::Party> make_attack_party(sim::PartyId id, bool input,
                                                              bool lit,
                                                              const sim::ProtocolParams& params) const;
};

}  // namespace simulcast::protocols
