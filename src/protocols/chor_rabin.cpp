#include "protocols/chor_rabin.h"

namespace simulcast::protocols {

std::size_t ChorRabinProtocol::pok_batches(std::size_t n) {
  std::size_t batches = 1;
  while ((std::size_t{1} << batches) < n) ++batches;
  return batches;
}

VssSchedule ChorRabinProtocol::schedule(std::size_t n) {
  const std::size_t batches = pok_batches(n);
  VssSchedule s;
  s.n = n;
  s.threshold = vss_threshold(n);
  s.deal_round.assign(n, 0);
  std::vector<PokRounds> pok(n);
  for (std::size_t d = 0; d < n; ++d) {
    // Dealer d proves in batch floor(d * batches / n): an even split.
    const std::size_t batch = d * batches / n;
    pok[d] = {1 + 3 * batch, 2 + 3 * batch, 3 + 3 * batch};
  }
  s.pok = std::move(pok);
  s.complaint_round = 1 + 3 * batches;
  s.justify_round = s.complaint_round + 1;
  s.reconstruct_round = s.justify_round + 1;
  s.total_rounds = s.reconstruct_round + 1;
  s.validate();
  return s;
}

std::unique_ptr<sim::Party> ChorRabinProtocol::make_party(sim::PartyId /*id*/, bool input,
                                                          const sim::ProtocolParams& params) const {
  return std::make_unique<VssProtocolParty>(schedule(params.n), input);
}

}  // namespace simulcast::protocols
