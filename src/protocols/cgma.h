// CGMA-style simultaneous broadcast (Chor-Goldwasser-Micali-Awerbuch,
// FOCS 1985 [7]): the original, linear-round protocol.
//
// The paper's Section 1 motivates the follow-up work by this protocol's
// round complexity: "(for each simultaneous broadcast operation) a number
// of rounds that is linear in the number of parties".  We reproduce that
// shape by scheduling the verifiable-secret-sharing deals *sequentially* -
// dealer d deals in round d - followed by the common complain / justify /
// reveal tail, for n + 3 rounds total.  Tolerates t < n/2 corruptions.
#pragma once

#include "protocols/vss_core.h"

namespace simulcast::protocols {

class CgmaProtocol final : public sim::ParallelBroadcastProtocol {
 public:
  [[nodiscard]] std::string name() const override { return "cgma"; }
  [[nodiscard]] std::size_t rounds(std::size_t n) const override { return n + 3; }
  [[nodiscard]] std::size_t max_corruptions(std::size_t n) const override {
    return vss_threshold(n);
  }
  [[nodiscard]] std::unique_ptr<sim::Party> make_party(
      sim::PartyId id, bool input, const sim::ProtocolParams& params) const override;

  /// The schedule, exposed so adversaries and tests can align with it.
  [[nodiscard]] static VssSchedule schedule(std::size_t n);
};

}  // namespace simulcast::protocols
