// Naive commit-then-reveal: the textbook 2-round attempt at simultaneous
// broadcast, kept as a negative control.
//
// Round 0: every party broadcasts a commitment to its bit (label-bound to
// its identity, so plain copying fails).  Round 1: every party broadcasts
// the opening; an invalid or missing opening is announced as the default 0.
//
// The commit phase hides and binds, but the committed value is NOT
// recoverable without the committer's cooperation - so a rushing corrupted
// party can watch the honest openings in round 1 and *selectively abort*:
// reveal (announcing its committed bit) or stay silent (announcing 0)
// depending on what the honest parties revealed.  That correlates its
// announced value with the honest ones and violates both G- and
// CR-independence (adversary/selective_abort.h, experiment E4b).  The VSS
// protocols avoid this precisely because the honest majority can
// reconstruct a committed bit without the committer.
#pragma once

#include "sim/protocol.h"

namespace simulcast::protocols {

inline const sim::Tag kNcrCommitTag{"ncr-commit"};
inline const sim::Tag kNcrOpenTag{"ncr-open"};

/// The commitment label for party `id` (binds identity into the commitment).
[[nodiscard]] std::string ncr_label(sim::PartyId id);

class NaiveCommitRevealProtocol final : public sim::ParallelBroadcastProtocol {
 public:
  [[nodiscard]] std::string name() const override { return "naive-commit-reveal"; }
  [[nodiscard]] std::size_t rounds(std::size_t /*n*/) const override { return 2; }
  [[nodiscard]] std::unique_ptr<sim::Party> make_party(
      sim::PartyId id, bool input, const sim::ProtocolParams& params) const override;
};

}  // namespace simulcast::protocols
