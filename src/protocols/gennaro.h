// Gennaro-style simultaneous broadcast (IEEE TPDS 2000 [12]): the
// constant-round protocol.
//
// Every party deals its Pedersen-VSS commitment in parallel in round 0;
// complain / justify / reveal complete the protocol in 4 rounds total,
// independent of n - the constant-round shape the paper attributes to [12]
// (Gennaro's construction also rests on Pedersen's VSS).  Tolerates
// t < n/2 corruptions.
#pragma once

#include "protocols/vss_core.h"

namespace simulcast::protocols {

class GennaroProtocol final : public sim::ParallelBroadcastProtocol {
 public:
  [[nodiscard]] std::string name() const override { return "gennaro"; }
  [[nodiscard]] std::size_t rounds(std::size_t /*n*/) const override { return 4; }
  [[nodiscard]] std::size_t max_corruptions(std::size_t n) const override {
    return vss_threshold(n);
  }
  [[nodiscard]] std::unique_ptr<sim::Party> make_party(
      sim::PartyId id, bool input, const sim::ProtocolParams& params) const override;

  [[nodiscard]] static VssSchedule schedule(std::size_t n);
};

}  // namespace simulcast::protocols
