#include "protocols/seq_ds.h"

#include "base/error.h"

namespace simulcast::protocols {

namespace {

class SeqDsParty final : public sim::Party {
 public:
  SeqDsParty(sim::PartyId id, bool input, std::size_t t, std::size_t n)
      : t_(t), n_(n), block_len_(t + 2) {
    sim::ProtocolParams params;
    params.n = n;
    blocks_.reserve(n);
    for (sim::PartyId sender = 0; sender < n; ++sender) {
      const broadcast::DolevStrongBroadcast instance(sender, t_);
      blocks_.push_back(instance.make_party(id, input, params));
    }
  }

  void begin(sim::PartyContext& ctx) override {
    for (auto& block : blocks_) block->begin(ctx);
    // begin() must not leave stray messages; the DS machine does not send
    // there, but drain defensively so blocks stay isolated.
    (void)ctx.take_outbox();
  }

  void on_round(sim::Round round, const sim::Inbox& inbox,
                sim::PartyContext& ctx) override {
    const std::size_t block = round / block_len_;
    const std::size_t local = round % block_len_;
    if (block >= n_) return;
    // The first round of a block carries the previous block's final
    // deliveries: complete that instance before starting the new one.
    if (local == 0 && block > 0) blocks_[block - 1]->finish(inbox, ctx);
    blocks_[block]->on_round(local, inbox, ctx);
  }

  void finish(const sim::Inbox& inbox, sim::PartyContext& ctx) override {
    blocks_[n_ - 1]->finish(inbox, ctx);
    done_ = true;
  }

  [[nodiscard]] BitVec output() const override {
    if (!done_) throw ProtocolError("SeqDsParty: output before finish");
    BitVec out(n_);
    for (sim::PartyId sender = 0; sender < n_; ++sender) {
      // Block `sender`'s DS output has the agreed bit at the sender's
      // coordinate.
      out.set(sender, blocks_[sender]->output().get(sender));
    }
    return out;
  }

 private:
  std::size_t t_;
  std::size_t n_;
  std::size_t block_len_;
  std::vector<std::unique_ptr<sim::Party>> blocks_;
  bool done_ = false;
};

}  // namespace

std::unique_ptr<sim::Party> SeqDolevStrongProtocol::make_party(
    sim::PartyId id, bool input, const sim::ProtocolParams& params) const {
  return std::make_unique<SeqDsParty>(id, input, t_, params.n);
}

}  // namespace simulcast::protocols
