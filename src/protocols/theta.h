// The leaky function g and the subprotocol Θ of Lemma 6.4.
//
// g takes from each party a pair (x_i, b_i).  Let L = { i : b_i = 1 }.
// With a fresh fair coin r:
//   |L| == 2 (elements l1 < l2):  w_l1 = r,  w_l2 = r XOR y,  where
//       y = XOR of x_i over i not in {l1, l2};   w_i = x_i elsewhere.
//   otherwise:                     w = x.
// Every party receives the full vector w.
//
// The design is the paper's scalpel: each corrupted coordinate alone is an
// unbiased coin (G-independence holds), yet the XOR of all announced bits
// is identically 0 when two parties set b = 1 (Claim 6.6), which a
// CR-predicate detects instantly.
//
// Claim 6.5 only asserts Θ exists via generic MPC, so the default backend
// is the ideal functionality below (the Ideal(g) hybrid the proof reasons
// about); protocols/theta_mpc.h provides an honest-majority secret-sharing
// implementation for the backend ablation.
#pragma once

#include <optional>
#include <vector>

#include "base/bitvec.h"
#include "sim/functionality.h"
#include "sim/protocol.h"

namespace simulcast::protocols {

inline const sim::Tag kThetaInputTag{"theta-input"};
inline const sim::Tag kThetaOutputTag{"theta-output"};

struct ThetaInput {
  bool x = false;
  bool b = false;
};

/// The function g itself (pure; used by the functionality and by tests).
[[nodiscard]] BitVec theta_g(const std::vector<ThetaInput>& v, bool r);

/// Wire helpers for the (x, b) input message.
[[nodiscard]] Bytes encode_theta_input(ThetaInput in);
[[nodiscard]] std::optional<ThetaInput> decode_theta_input(const Bytes& payload);

/// The trusted-party implementation of Θ: collects inputs in round 1,
/// evaluates g with its own coin, and returns w to everyone.  A party that
/// sends nothing valid is treated as (x, b) = (0, 0).
class ThetaIdealFunctionality final : public sim::TrustedFunctionality {
 public:
  explicit ThetaIdealFunctionality(std::size_t n) : n_(n) {}

  void on_round(sim::Round round, const sim::Inbox& inbox,
                crypto::HmacDrbg& drbg, sim::FunctionalitySender& sender) override;

 private:
  std::size_t n_;
  std::vector<ThetaInput> inputs_;
};

/// The flawed protocol Π_G of Lemma 6.4 over the ideal Θ: each party calls
/// Θ with (x_i, b_i = 0) and outputs the returned vector.  2 rounds.
class FlawedPiGProtocol final : public sim::ParallelBroadcastProtocol {
 public:
  [[nodiscard]] std::string name() const override { return "flawed-pi-g"; }
  [[nodiscard]] std::size_t rounds(std::size_t /*n*/) const override { return 2; }
  [[nodiscard]] std::size_t max_corruptions(std::size_t n) const override {
    return vss_corruption_bound(n);
  }
  [[nodiscard]] std::unique_ptr<sim::Party> make_party(
      sim::PartyId id, bool input, const sim::ProtocolParams& params) const override;
  [[nodiscard]] std::unique_ptr<sim::TrustedFunctionality> make_functionality(
      const sim::ProtocolParams& params) const override;

 private:
  // Θ is realizable for t < n/2 (Claim 6.5); keep the same bound here.
  [[nodiscard]] static std::size_t vss_corruption_bound(std::size_t n) { return (n - 1) / 2; }
};

}  // namespace simulcast::protocols
