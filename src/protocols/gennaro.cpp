#include "protocols/gennaro.h"

namespace simulcast::protocols {

VssSchedule GennaroProtocol::schedule(std::size_t n) {
  VssSchedule s;
  s.n = n;
  s.threshold = vss_threshold(n);
  s.deal_round.assign(n, 0);  // everyone deals at once
  s.complaint_round = 1;
  s.justify_round = 2;
  s.reconstruct_round = 3;
  s.total_rounds = 4;
  s.validate();
  return s;
}

std::unique_ptr<sim::Party> GennaroProtocol::make_party(sim::PartyId /*id*/, bool input,
                                                        const sim::ProtocolParams& params) const {
  return std::make_unique<VssProtocolParty>(schedule(params.n), input);
}

}  // namespace simulcast::protocols
