// Shared machinery of the three "real" simultaneous-broadcast protocols.
//
// CGMA [7], Chor-Rabin [8] and Gennaro [12] all follow the same robust
// commit-then-reveal skeleton; what differs is the *scheduling* of the
// commit phase, which is precisely where their round complexities (linear,
// logarithmic, constant) come from:
//
//   deal      every party Pedersen-VSS-shares its input bit (degree t,
//             t < n/2): commitments on the broadcast channel, shares on
//             private channels.  Perfect hiding means nothing about the bit
//             leaks; any t+1 verifying shares pin the bit down, so the
//             announced value of every party - including corrupted ones -
//             is fixed and *recoverable by the honest majority* at the end
//             of the commit phase.  This is what defeats selective-abort
//             correlation attacks (contrast protocols/naive_commit_reveal.h).
//   (PoK)     Chor-Rabin only: each dealer proves knowledge of its
//             committed secret with an interactive sigma protocol, batched
//             into ceil(log2 n) groups of three rounds - the paper's
//             logarithmic schedule.  Dealers that fail are disqualified
//             before anything is revealed, so commitment copying/mauling is
//             neutralized during the commit phase.
//   complain  every party broadcasts a bitmask of dealers whose shares were
//             missing or invalid.
//   justify   an accused dealer publicly broadcasts the complained shares;
//             failure to justify disqualifies the dealer (announced 0, per
//             the paper's footnote-2 default), decided before any reveal.
//   reveal    every party broadcasts its (verifying) shares of every
//             qualified dealer; reconstruction needs t+1 of them and the
//             honest parties alone supply n - t >= t+1.
//
// VssProtocolParty implements the whole skeleton once, driven by a
// VssSchedule; the three protocol classes in cgma.h / chor_rabin.h /
// gennaro.h only build schedules.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "crypto/sigma.h"
#include "crypto/vss.h"
#include "sim/protocol.h"

namespace simulcast::protocols {

/// Message tags of the VSS skeleton (payload formats in vss_core.cpp).
inline const sim::Tag kVssCommitTag{"vss-commit"};
inline const sim::Tag kVssShareTag{"vss-share"};
inline const sim::Tag kVssComplainTag{"vss-complain"};
inline const sim::Tag kVssJustifyTag{"vss-justify"};
inline const sim::Tag kVssRevealTag{"vss-reveal"};
inline const sim::Tag kPokCommitTag{"pok-a"};
inline const sim::Tag kPokChallengeTag{"pok-chal"};
inline const sim::Tag kPokResponseTag{"pok-resp"};

/// Rounds of one sigma-protocol batch (A, joint challenge, response).
struct PokRounds {
  sim::Round commit = 0;
  sim::Round challenge = 0;
  sim::Round response = 0;
};

/// The full round schedule of a VSS-skeleton protocol.
struct VssSchedule {
  std::size_t n = 0;
  std::size_t threshold = 0;            ///< polynomial degree = corruption bound t
  std::vector<sim::Round> deal_round;   ///< deal_round[d] for dealer d
  std::optional<std::vector<PokRounds>> pok;  ///< per-dealer PoK rounds (Chor-Rabin)
  sim::Round complaint_round = 0;
  sim::Round justify_round = 0;
  sim::Round reconstruct_round = 0;
  std::size_t total_rounds = 0;

  /// Validates internal consistency (ordering, sizes); throws UsageError.
  void validate() const;
};

/// The honest machine. Exposed (rather than hidden in a .cpp) so that
/// adversaries built from honest machines can parameterize them.
class VssProtocolParty final : public sim::Party {
 public:
  VssProtocolParty(VssSchedule schedule, bool input);

  /// Replaces the input bit; only meaningful before this party's deal
  /// round.  Honest parties never call this - it exists for adaptive
  /// adversaries (e.g. the share-snooping attack of experiment E12) that
  /// drive an honest machine with a late-chosen input.
  void set_input(bool input) noexcept { input_ = input; }

  void begin(sim::PartyContext& ctx) override;
  void on_round(sim::Round round, const sim::Inbox& inbox,
                sim::PartyContext& ctx) override;
  void finish(const sim::Inbox& inbox, sim::PartyContext& ctx) override;
  [[nodiscard]] BitVec output() const override;

 private:
  struct DealerState {
    std::optional<std::vector<std::uint64_t>> commitments;  ///< C_j vector
    std::optional<crypto::PedersenShare> my_share;          ///< verified share for me
    std::vector<crypto::PedersenShare> public_shares;       ///< justified + revealed, verified
    std::set<std::uint64_t> public_share_points;            ///< dedupe by x
    // PoK transcript pieces.
    std::optional<std::uint64_t> pok_a;
    std::optional<crypto::SigmaResponse> pok_response;
    // Complaints against this dealer: complainer -> justified?
    std::map<sim::PartyId, bool> complaints;
    bool disqualified = false;
  };

  void record(const sim::Inbox& inbox, sim::PartyContext& ctx);
  void deal(sim::PartyContext& ctx);
  void add_public_share(DealerState& state, const crypto::PedersenShare& share);
  [[nodiscard]] crypto::Zq joint_challenge(sim::Round challenge_round) const;
  void decide_disqualifications();

  VssSchedule schedule_;
  bool input_;
  const crypto::SchnorrGroup* group_ = nullptr;
  crypto::PedersenVss vss_;
  sim::PartyId me_ = 0;

  // My own deal (needed for PoK responses and my reveal).
  std::optional<crypto::PedersenDeal> my_deal_;
  std::optional<crypto::Zq> my_secret_;
  std::optional<crypto::Zq> my_secret_blinding_;
  std::optional<crypto::SigmaCommitment> my_pok_;

  std::vector<DealerState> dealers_;
  /// Challenge contributions seen, keyed by the round they were sent in.
  std::map<sim::Round, std::map<sim::PartyId, std::uint64_t>> challenge_contributions_;
  /// My own contributions per challenge round (broadcasts are not
  /// self-delivered).
  std::map<sim::Round, std::uint64_t> my_contributions_;
  bool decided_ = false;
  BitVec result_;
};

/// Convenience: the corruption bound used by all VSS protocols.
[[nodiscard]] constexpr std::size_t vss_threshold(std::size_t n) noexcept {
  return (n - 1) / 2;
}

}  // namespace simulcast::protocols
