#include "protocols/cgma.h"

namespace simulcast::protocols {

VssSchedule CgmaProtocol::schedule(std::size_t n) {
  VssSchedule s;
  s.n = n;
  s.threshold = vss_threshold(n);
  s.deal_round.resize(n);
  for (std::size_t d = 0; d < n; ++d) s.deal_round[d] = d;  // sequential deals
  s.complaint_round = n;
  s.justify_round = n + 1;
  s.reconstruct_round = n + 2;
  s.total_rounds = n + 3;
  s.validate();
  return s;
}

std::unique_ptr<sim::Party> CgmaProtocol::make_party(sim::PartyId /*id*/, bool input,
                                                     const sim::ProtocolParams& params) const {
  return std::make_unique<VssProtocolParty>(schedule(params.n), input);
}

}  // namespace simulcast::protocols
