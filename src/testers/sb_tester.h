// Sb-independence tester (Definitions 4.1/4.2, the simulation-based notion
// of Chor-Goldwasser-Micali-Awerbuch cast into Canetti's framework).
//
// The definition asks for a simulator S such that real executions and
// ideal executions of f_SB(x) = (x, ..., x) are indistinguishable.  The
// tester instantiates the *canonical black-box dummy-input simulator*: run
// the adversary inside a sandboxed execution in which every honest party
// inputs 0, read off the corrupted parties' announced values, and submit
// those to the ideal functionality.  The ideal announced vector is then
//     W_ideal = x_honest ⊔ Ŵ_B(sandbox).
// If the protocol is independent, corrupted announced values cannot depend
// on honest inputs, so the sandbox values are distributed like the real
// ones and the two ensembles match; if a corrupted announced value does
// depend on honest inputs (copying, selective abort, parity rigging), the
// joint (x, W) distributions diverge and the tester reports the gap.
//
// Caveat stated plainly: a reported PASS certifies only that this canonical
// simulator works against the tested distinguishers - the right direction
// for every experiment in this repo, where Sb violations are what we hunt.
// The distinguisher library contains the copy detector used in Prop. 6.3,
// parity checks, and per-coordinate input/output matchers; the headline
// number is the total-variation distance between the empirical joint
// (x, W) distributions, the strongest statistic at this scale.
#pragma once

#include "dist/ensembles.h"
#include "testers/monte_carlo.h"

namespace simulcast::testers {

/// A distinguisher over the pair (inputs x, announced W).
struct SbDistinguisher {
  std::string name;
  std::function<bool(const BitVec& x, const BitVec& w)> eval;
};

[[nodiscard]] std::vector<SbDistinguisher> default_sb_distinguishers(
    std::size_t n, const std::vector<sim::PartyId>& corrupted);

struct SbFinding {
  std::string distinguisher;
  double p_real = 0.0;
  double p_ideal = 0.0;
};

struct SbVerdict {
  bool secure = true;
  double tv_joint = 0.0;          ///< TV distance of empirical joint (x, W)
  double max_distinguisher_gap = 0.0;
  double radius = 0.0;
  SbFinding worst;
  std::size_t samples = 0;
};

struct SbOptions {
  std::size_t samples = 2000;
  double alpha = 0.01;
  double margin = 0.05;  ///< max distinguisher gap must clear radius + margin
};

/// Runs real and simulated ensembles over `ensemble` and compares them.
[[nodiscard]] SbVerdict test_sb(const RunSpec& spec, const dist::InputEnsemble& ensemble,
                                const SbOptions& options, std::uint64_t seed);

}  // namespace simulcast::testers
