// G-independence tester (Definition 4.4, Gennaro).
//
// For every corrupted party P_i, every bit b, and every pair of honest
// announced vectors (r, s) with enough empirical mass, estimate
//     gap = | Pr[W_i = b | W_honest = r] - Pr[W_i = b | W_honest = s] |.
// The definition requires the gap to be negligible; the tester reports the
// maximum over all (i, b, r, s) with a per-conditioning Hoeffding radius
// (driven by the smaller of the two conditioning counts).
//
// Conditioning on rare vectors is exactly the technical wrinkle that led
// the paper to define G** (Appendix B); the min_conditioning_count floor
// mirrors that: pairs whose conditioning events were observed fewer times
// are skipped as statistically meaningless.
#pragma once

#include "testers/monte_carlo.h"

namespace simulcast::testers {

struct GFinding {
  std::size_t party = 0;  ///< corrupted party index i
  bool bit = false;
  BitVec r;               ///< honest vector of the first conditioning
  BitVec s;               ///< honest vector of the second conditioning
  double gap = 0.0;
  double radius = 0.0;    ///< Hoeffding radius for this pair
  std::size_t count_r = 0;
  std::size_t count_s = 0;
};

struct GVerdict {
  bool independent = true;
  double max_excess = 0.0;  ///< max over pairs of (gap - radius)
  GFinding worst;
  std::size_t samples = 0;
  std::size_t pairs_tested = 0;
};

struct GOptions {
  double alpha = 0.01;
  double margin = 0.02;                      ///< excess must clear this to flag
  std::size_t min_conditioning_count = 50;   ///< floor for usable conditionings
};

[[nodiscard]] GVerdict test_g(const std::vector<Sample>& samples,
                              const std::vector<sim::PartyId>& corrupted,
                              const GOptions& options = {});

}  // namespace simulcast::testers
