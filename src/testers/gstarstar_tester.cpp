#include "testers/gstarstar_tester.h"

#include <cmath>

#include "base/error.h"
#include "stats/confidence.h"

namespace simulcast::testers {

GssVerdict test_gstarstar(const RunSpec& spec, const GssOptions& options, std::uint64_t seed) {
  if (spec.protocol == nullptr) throw UsageError("test_gstarstar: null protocol");
  if (spec.corrupted.empty()) throw UsageError("test_gstarstar: no corrupted party");
  const std::size_t n = spec.params.n;
  const std::vector<std::size_t> honest = honest_indices(n, spec.corrupted);
  if (honest.empty()) throw UsageError("test_gstarstar: no honest parties");
  if (honest.size() > 12) throw UsageError("test_gstarstar: too many honest inputs to enumerate");

  std::vector<BitVec> w_list = options.corrupted_inputs;
  if (w_list.empty()) {
    w_list.emplace_back(spec.corrupted.size());
    BitVec ones(spec.corrupted.size());
    for (std::size_t j = 0; j < ones.size(); ++j) ones.set(j, true);
    w_list.push_back(ones);
  }

  GssVerdict verdict;
  const std::size_t honest_count = std::size_t{1} << honest.size();
  const double tests =
      static_cast<double>(w_list.size() * spec.corrupted.size()) *
      static_cast<double>(honest_count * honest_count);
  verdict.radius = stats::hoeffding_diff_radius(options.samples_per_input,
                                                options.samples_per_input,
                                                options.alpha / std::max(1.0, tests));

  stats::Rng master(seed);
  for (std::size_t wi = 0; wi < w_list.size(); ++wi) {
    const BitVec& w = w_list[wi];
    if (w.size() != spec.corrupted.size())
      throw UsageError("test_gstarstar: corrupted-input width mismatch");
    // Estimate Pr[W_i = 1] for every fixed honest-input vector.
    // p_one[h][i-index] = fraction of executions with W_{corrupted[i]} = 1.
    std::vector<std::vector<double>> p_one(honest_count,
                                           std::vector<double>(spec.corrupted.size(), 0.0));
    for (std::size_t h = 0; h < honest_count; ++h) {
      const BitVec honest_vec(honest.size(), h);
      const BitVec input = BitVec::splice(n, spec.corrupted, w, honest_vec);
      const std::vector<Sample> samples = collect_samples_fixed(
          spec, input, options.samples_per_input, master.fork("gss", wi * honest_count + h)());
      verdict.executions += samples.size();
      for (const Sample& s : samples)
        for (std::size_t ci = 0; ci < spec.corrupted.size(); ++ci)
          if (s.announced.get(spec.corrupted[ci])) p_one[h][ci] += 1.0;
      for (std::size_t ci = 0; ci < spec.corrupted.size(); ++ci)
        p_one[h][ci] /= static_cast<double>(samples.size());
    }
    for (std::size_t ci = 0; ci < spec.corrupted.size(); ++ci) {
      for (std::size_t a = 0; a < honest_count; ++a) {
        for (std::size_t b = a + 1; b < honest_count; ++b) {
          const double gap = std::abs(p_one[a][ci] - p_one[b][ci]);
          if (gap > verdict.max_gap) {
            verdict.max_gap = gap;
            verdict.worst = {spec.corrupted[ci], w, BitVec(honest.size(), a),
                             BitVec(honest.size(), b), gap};
          }
        }
      }
    }
  }
  verdict.independent = verdict.max_gap <= verdict.radius + options.margin;
  return verdict;
}

}  // namespace simulcast::testers
