#include "testers/monte_carlo.h"

#include "base/error.h"

namespace simulcast::testers {

namespace {

Sample run_one(const RunSpec& spec, const BitVec& input, std::uint64_t exec_seed) {
  sim::ExecutionConfig config;
  config.seed = exec_seed;
  config.corrupted = spec.corrupted;
  config.auxiliary_input = spec.auxiliary_input;
  config.private_channels = spec.private_channels;

  const std::unique_ptr<sim::Adversary> adv = spec.adversary();
  const sim::ExecutionResult result =
      sim::run_execution(*spec.protocol, spec.params, input, *adv, config);
  const broadcast::Announced announced = broadcast::extract_announced(result, spec.corrupted);

  Sample s;
  s.inputs = input;
  s.announced = announced.consistent ? announced.w : BitVec(spec.params.n);
  s.consistent = announced.consistent;
  s.adversary_output = result.adversary_output;
  return s;
}

}  // namespace

std::vector<Sample> collect_samples(const RunSpec& spec, const dist::InputEnsemble& ensemble,
                                    std::size_t count, std::uint64_t seed) {
  if (spec.protocol == nullptr) throw UsageError("collect_samples: null protocol");
  if (ensemble.bits() != spec.params.n) throw UsageError("collect_samples: ensemble width != n");
  stats::Rng master(seed);
  stats::Rng input_rng = master.fork("inputs");
  std::vector<Sample> samples;
  samples.reserve(count);
  for (std::size_t rep = 0; rep < count; ++rep) {
    const BitVec input = ensemble.sample(input_rng);
    samples.push_back(run_one(spec, input, master.fork("exec", rep)()));
  }
  return samples;
}

std::vector<Sample> collect_samples_fixed(const RunSpec& spec, const BitVec& input,
                                          std::size_t count, std::uint64_t seed) {
  if (spec.protocol == nullptr) throw UsageError("collect_samples_fixed: null protocol");
  if (input.size() != spec.params.n) throw UsageError("collect_samples_fixed: width != n");
  stats::Rng master(seed);
  std::vector<Sample> samples;
  samples.reserve(count);
  for (std::size_t rep = 0; rep < count; ++rep)
    samples.push_back(run_one(spec, input, master.fork("exec-fixed", rep)()));
  return samples;
}

double consistency_rate(const std::vector<Sample>& samples) {
  if (samples.empty()) return 0.0;
  std::size_t ok = 0;
  for (const Sample& s : samples) ok += s.consistent ? 1 : 0;
  return static_cast<double>(ok) / static_cast<double>(samples.size());
}

std::vector<std::size_t> honest_indices(std::size_t n,
                                        const std::vector<sim::PartyId>& corrupted) {
  return complement(n, corrupted);
}

}  // namespace simulcast::testers
