#include "testers/monte_carlo.h"

#include "base/error.h"

namespace simulcast::testers {

std::vector<Sample> collect_samples(const RunSpec& spec, const dist::InputEnsemble& ensemble,
                                    std::size_t count, std::uint64_t seed, std::size_t threads) {
  return collect_batch(spec, ensemble, count, seed, threads).samples;
}

std::vector<Sample> collect_samples_fixed(const RunSpec& spec, const BitVec& input,
                                          std::size_t count, std::uint64_t seed,
                                          std::size_t threads) {
  return collect_batch_fixed(spec, input, count, seed, threads).samples;
}

exec::BatchResult collect_batch(const RunSpec& spec, const dist::InputEnsemble& ensemble,
                                std::size_t count, std::uint64_t seed, std::size_t threads) {
  return exec::Runner(threads).run_batch(spec, ensemble, count, seed);
}

exec::BatchResult collect_batch_fixed(const RunSpec& spec, const BitVec& input, std::size_t count,
                                      std::uint64_t seed, std::size_t threads) {
  return exec::Runner(threads).run_batch(spec, input, count, seed);
}

double consistency_rate(const std::vector<Sample>& samples) {
  if (samples.empty()) throw UsageError("consistency_rate: empty sample set");
  std::size_t ok = 0;
  for (const Sample& s : samples) ok += s.consistent ? 1 : 0;
  return static_cast<double>(ok) / static_cast<double>(samples.size());
}

std::vector<std::size_t> honest_indices(std::size_t n,
                                        const std::vector<sim::PartyId>& corrupted) {
  return complement(n, corrupted);
}

}  // namespace simulcast::testers
