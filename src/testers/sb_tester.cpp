#include "testers/sb_tester.h"

#include <algorithm>
#include <cmath>

#include "base/error.h"
#include "stats/confidence.h"
#include "stats/empirical.h"

namespace simulcast::testers {

namespace {

/// Packs (x, W) into a 2n-bit vector for joint-histogram comparison.
BitVec pack_pair(const BitVec& x, const BitVec& w) {
  BitVec out(x.size() + w.size());
  for (std::size_t i = 0; i < x.size(); ++i) out.set(i, x.get(i));
  for (std::size_t i = 0; i < w.size(); ++i) out.set(x.size() + i, w.get(i));
  return out;
}

}  // namespace

std::vector<SbDistinguisher> default_sb_distinguishers(
    std::size_t n, const std::vector<sim::PartyId>& corrupted) {
  std::vector<SbDistinguisher> lib;
  const std::vector<std::size_t> honest = honest_indices(n, corrupted);
  // Copy detectors: corrupted announced value equals an honest input.
  for (std::size_t c : corrupted) {
    for (std::size_t j : honest) {
      lib.push_back({"W" + std::to_string(c) + "==x" + std::to_string(j),
                     [c, j](const BitVec& x, const BitVec& w) { return w.get(c) == x.get(j); }});
    }
  }
  // Parity rigging.
  lib.push_back({"parity(W)==0", [](const BitVec&, const BitVec& w) { return !w.parity(); }});
  // Corrupted coordinates themselves.
  for (std::size_t c : corrupted)
    lib.push_back({"W" + std::to_string(c) + "==1",
                   [c](const BitVec&, const BitVec& w) { return w.get(c); }});
  // Honest correctness (should hold in both worlds; catches simulator bugs).
  for (std::size_t j : honest)
    lib.push_back({"W" + std::to_string(j) + "==x" + std::to_string(j),
                   [j](const BitVec& x, const BitVec& w) { return w.get(j) == x.get(j); }});
  return lib;
}

SbVerdict test_sb(const RunSpec& spec, const dist::InputEnsemble& ensemble,
                  const SbOptions& options, std::uint64_t seed) {
  if (spec.protocol == nullptr) throw UsageError("test_sb: null protocol");
  const std::size_t n = spec.params.n;
  const std::vector<std::size_t> honest = honest_indices(n, spec.corrupted);

  stats::Rng master(seed);
  stats::Rng input_rng = master.fork("sb-inputs");

  // Inputs and per-repetition seeds are derived serially, exactly as the
  // historical loop consumed them; the 2*samples executions then shard
  // across the exec engine and land in repetition-indexed slots, so the
  // verdict is bit-identical for every thread count.
  std::vector<BitVec> xs;
  xs.reserve(options.samples);
  std::vector<std::uint64_t> real_seeds(options.samples);
  std::vector<std::uint64_t> ideal_seeds(options.samples);
  for (std::size_t rep = 0; rep < options.samples; ++rep) {
    xs.push_back(ensemble.sample(input_rng));
    real_seeds[rep] = master.fork("sb-real", rep)();
    ideal_seeds[rep] = master.fork("sb-ideal", rep)();
  }

  std::vector<std::pair<BitVec, BitVec>> real_pairs(options.samples);
  std::vector<std::pair<BitVec, BitVec>> ideal_pairs(options.samples);
  exec::parallel_for(options.samples, exec::default_threads(), [&](std::size_t rep) {
    const BitVec& x = xs[rep];

    // Real world.
    {
      const std::vector<Sample> s = collect_samples_fixed(spec, x, 1, real_seeds[rep], 1);
      real_pairs[rep] = {x, s.front().announced};
    }
    // Ideal world with the dummy-input simulator: sandbox the adversary on
    // honest inputs pinned to 0 and read off the corrupted announced values.
    {
      BitVec dummy = x;
      for (std::size_t j : honest) dummy.set(j, false);
      const std::vector<Sample> s = collect_samples_fixed(spec, dummy, 1, ideal_seeds[rep], 1);
      BitVec w_ideal = x;  // f_SB hands honest inputs through verbatim
      for (std::size_t c : spec.corrupted) w_ideal.set(c, s.front().announced.get(c));
      ideal_pairs[rep] = {x, w_ideal};
    }
  });

  stats::EmpiricalDist real_joint(2 * n);
  stats::EmpiricalDist ideal_joint(2 * n);
  for (std::size_t rep = 0; rep < options.samples; ++rep) {
    real_joint.add(pack_pair(real_pairs[rep].first, real_pairs[rep].second));
    ideal_joint.add(pack_pair(ideal_pairs[rep].first, ideal_pairs[rep].second));
  }

  SbVerdict verdict;
  verdict.samples = options.samples;
  verdict.tv_joint = real_joint.tv_distance(ideal_joint);

  const std::vector<SbDistinguisher> lib = default_sb_distinguishers(n, spec.corrupted);
  const double alpha_each = options.alpha / std::max<double>(1.0, static_cast<double>(lib.size()));
  verdict.radius = stats::hoeffding_diff_radius(options.samples, options.samples, alpha_each);
  for (const SbDistinguisher& d : lib) {
    double p_real = 0.0;
    double p_ideal = 0.0;
    for (const auto& [x, w] : real_pairs) p_real += d.eval(x, w) ? 1.0 : 0.0;
    for (const auto& [x, w] : ideal_pairs) p_ideal += d.eval(x, w) ? 1.0 : 0.0;
    p_real /= static_cast<double>(options.samples);
    p_ideal /= static_cast<double>(options.samples);
    const double gap = std::abs(p_real - p_ideal);
    if (gap > verdict.max_distinguisher_gap) {
      verdict.max_distinguisher_gap = gap;
      verdict.worst = {d.name, p_real, p_ideal};
    }
  }
  verdict.secure = verdict.max_distinguisher_gap <= verdict.radius + options.margin;
  return verdict;
}

}  // namespace simulcast::testers
