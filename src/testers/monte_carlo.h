// Monte-Carlo execution harness shared by all independence testers.
//
// Each tester estimates the literal quantity in its definition from N
// independent executions: fresh input draw, fresh protocol randomness,
// fresh adversary instance, all derived from (seed, repetition index) so a
// whole experiment replays exactly.
//
// Since the exec::Runner engine landed, this header is a thin facade: the
// repetition loop, the seed derivation and the parallel sharding live in
// exec/runner.h, and `threads` (0 = exec::default_threads()) only changes
// wall-clock time, never a single output bit.
#pragma once

#include <vector>

#include "exec/runner.h"

namespace simulcast::testers {

/// Everything needed to run one (protocol, adversary, corruption) triple.
using RunSpec = exec::RunSpec;

/// One execution's observables.
using Sample = exec::Sample;

/// Runs `count` executions with inputs drawn from `ensemble`.
[[nodiscard]] std::vector<Sample> collect_samples(const RunSpec& spec,
                                                  const dist::InputEnsemble& ensemble,
                                                  std::size_t count, std::uint64_t seed,
                                                  std::size_t threads = 0);

/// Runs `count` executions with the given fixed input vector (the quantity
/// Announced^Π_A(x) of Definition 3.1; used by the G** tester).
[[nodiscard]] std::vector<Sample> collect_samples_fixed(const RunSpec& spec, const BitVec& input,
                                                        std::size_t count, std::uint64_t seed,
                                                        std::size_t threads = 0);

/// collect_samples, but also returning the engine's per-batch accounting
/// (wall clock, throughput, aggregated traffic).
[[nodiscard]] exec::BatchResult collect_batch(const RunSpec& spec,
                                              const dist::InputEnsemble& ensemble,
                                              std::size_t count, std::uint64_t seed,
                                              std::size_t threads = 0);

/// collect_samples_fixed with the batch report.
[[nodiscard]] exec::BatchResult collect_batch_fixed(const RunSpec& spec, const BitVec& input,
                                                    std::size_t count, std::uint64_t seed,
                                                    std::size_t threads = 0);

/// Fraction of samples with consistent honest outputs (should be ~1 for a
/// correct parallel-broadcast protocol under any adversary).  Throws
/// UsageError on an empty sample set: 0/0 is not "always inconsistent".
[[nodiscard]] double consistency_rate(const std::vector<Sample>& samples);

/// Sorted honest coordinate list for a sample width and corruption set.
[[nodiscard]] std::vector<std::size_t> honest_indices(std::size_t n,
                                                      const std::vector<sim::PartyId>& corrupted);

}  // namespace simulcast::testers
