// Monte-Carlo execution harness shared by all independence testers.
//
// Each tester estimates the literal quantity in its definition from N
// independent executions: fresh input draw, fresh protocol randomness,
// fresh adversary instance, all derived from (seed, repetition index) so a
// whole experiment replays exactly.
#pragma once

#include <functional>
#include <vector>

#include "adversary/adversaries.h"
#include "broadcast/parallel_broadcast.h"
#include "dist/ensembles.h"
#include "sim/network.h"
#include "stats/rng.h"

namespace simulcast::testers {

/// Everything needed to run one (protocol, adversary, corruption) triple.
struct RunSpec {
  const sim::ParallelBroadcastProtocol* protocol = nullptr;
  sim::ProtocolParams params;
  std::vector<sim::PartyId> corrupted;
  adversary::AdversaryFactory adversary;
  Bytes auxiliary_input;
  bool private_channels = true;
};

/// One execution's observables.
struct Sample {
  BitVec inputs;           ///< x as drawn (or fixed)
  BitVec announced;        ///< W (Definition 3.1)
  bool consistent = false; ///< honest outputs agreed
  Bytes adversary_output;
};

/// Runs `count` executions with inputs drawn from `ensemble`.
[[nodiscard]] std::vector<Sample> collect_samples(const RunSpec& spec,
                                                  const dist::InputEnsemble& ensemble,
                                                  std::size_t count, std::uint64_t seed);

/// Runs `count` executions with the given fixed input vector (the quantity
/// Announced^Π_A(x) of Definition 3.1; used by the G** tester).
[[nodiscard]] std::vector<Sample> collect_samples_fixed(const RunSpec& spec, const BitVec& input,
                                                        std::size_t count, std::uint64_t seed);

/// Fraction of samples with consistent honest outputs (should be ~1 for a
/// correct parallel-broadcast protocol under any adversary).
[[nodiscard]] double consistency_rate(const std::vector<Sample>& samples);

/// Sorted honest coordinate list for a sample width and corruption set.
[[nodiscard]] std::vector<std::size_t> honest_indices(std::size_t n,
                                                      const std::vector<sim::PartyId>& corrupted);

}  // namespace simulcast::testers
