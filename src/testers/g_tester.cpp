#include "testers/g_tester.h"

#include <cmath>
#include <map>

#include "base/error.h"
#include "stats/confidence.h"

namespace simulcast::testers {

GVerdict test_g(const std::vector<Sample>& samples,
                const std::vector<sim::PartyId>& corrupted, const GOptions& options) {
  if (samples.empty()) throw UsageError("test_g: no samples");
  if (corrupted.empty()) throw UsageError("test_g: no corrupted party to test");
  const std::size_t n = samples.front().announced.size();
  const std::vector<std::size_t> honest = honest_indices(n, corrupted);
  if (honest.empty()) throw UsageError("test_g: no honest parties");

  GVerdict verdict;
  verdict.samples = samples.size();

  for (std::size_t i : corrupted) {
    // Bucket samples by the honest announced vector.
    struct Bucket {
      std::size_t total = 0;
      std::size_t ones = 0;  // W_i == 1
    };
    std::map<BitVec, Bucket> buckets;
    for (const Sample& s : samples) {
      Bucket& b = buckets[s.announced.select(honest)];
      ++b.total;
      if (s.announced.get(i)) ++b.ones;
    }
    // Keep statistically usable conditionings.
    std::vector<std::pair<BitVec, Bucket>> usable;
    for (const auto& [vec, bucket] : buckets)
      if (bucket.total >= options.min_conditioning_count) usable.emplace_back(vec, bucket);

    // Union bound across all pairs tested for all corrupted parties; the
    // exact pair count is not known upfront, so bound it generously by the
    // usable bucket count squared times corruptions.
    const double pair_bound = std::max<double>(
        1.0, static_cast<double>(usable.size() * usable.size() * corrupted.size()));
    for (std::size_t a = 0; a < usable.size(); ++a) {
      for (std::size_t b = a + 1; b < usable.size(); ++b) {
        ++verdict.pairs_tested;
        const auto& [vec_r, bucket_r] = usable[a];
        const auto& [vec_s, bucket_s] = usable[b];
        const double p_r =
            static_cast<double>(bucket_r.ones) / static_cast<double>(bucket_r.total);
        const double p_s =
            static_cast<double>(bucket_s.ones) / static_cast<double>(bucket_s.total);
        // gap for bit 1; bit 0's gap is identical by complementation.
        const double gap = std::abs(p_r - p_s);
        const double radius = stats::hoeffding_diff_radius(bucket_r.total, bucket_s.total,
                                                           options.alpha / pair_bound);
        const double excess = gap - radius;
        if (excess > verdict.max_excess) {
          verdict.max_excess = excess;
          verdict.worst = {i,   true,   vec_r,         vec_s,
                           gap, radius, bucket_r.total, bucket_s.total};
        }
      }
    }
  }
  verdict.independent = verdict.max_excess <= options.margin;
  return verdict;
}

}  // namespace simulcast::testers
