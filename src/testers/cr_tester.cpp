#include "testers/cr_tester.h"

#include <algorithm>
#include <cmath>

#include "base/error.h"
#include "stats/confidence.h"

namespace simulcast::testers {

std::vector<CrPredicate> default_cr_predicates(std::size_t reduced_bits) {
  std::vector<CrPredicate> lib;
  lib.push_back({"parity==0", [](const BitVec& v) { return !v.parity(); }});
  for (std::size_t j = 0; j < reduced_bits; ++j)
    lib.push_back({"bit" + std::to_string(j) + "==1",
                   [j](const BitVec& v) { return v.get(j); }});
  for (std::size_t j = 0; j < reduced_bits; ++j)
    for (std::size_t l = j + 1; l < reduced_bits; ++l) {
      lib.push_back({"eq:" + std::to_string(j) + "," + std::to_string(l),
                     [j, l](const BitVec& v) { return v.get(j) == v.get(l); }});
      lib.push_back({"and:" + std::to_string(j) + "," + std::to_string(l),
                     [j, l](const BitVec& v) { return v.get(j) && v.get(l); }});
    }
  lib.push_back({"majority", [reduced_bits](const BitVec& v) {
                   return static_cast<std::size_t>(v.popcount()) * 2 > reduced_bits;
                 }});
  lib.push_back({"all-zero", [](const BitVec& v) { return v.packed() == 0; }});
  return lib;
}

CrVerdict test_cr(const std::vector<Sample>& samples,
                  const std::vector<sim::PartyId>& corrupted, const CrOptions& options) {
  if (samples.empty()) throw UsageError("test_cr: no samples");
  const std::size_t n = samples.front().announced.size();
  const std::vector<std::size_t> honest = honest_indices(n, corrupted);
  if (honest.empty()) throw UsageError("test_cr: no honest party to test");

  const std::vector<CrPredicate> predicates =
      options.predicates.empty() ? default_cr_predicates(n - 1) : options.predicates;

  CrVerdict verdict;
  verdict.samples = samples.size();
  // Union bound over all tested (i, R) pairs; the three estimated
  // probabilities per pair add a further factor of 3.
  const double alpha_each =
      options.alpha / (3.0 * static_cast<double>(honest.size() * predicates.size()));
  verdict.radius = 3.0 * stats::hoeffding_radius(samples.size(), alpha_each);

  const double count = static_cast<double>(samples.size());
  for (std::size_t i : honest) {
    std::vector<std::size_t> others;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) others.push_back(j);
    for (const CrPredicate& pred : predicates) {
      double wi_zero = 0.0;
      double pred_true = 0.0;
      double joint = 0.0;
      for (const Sample& s : samples) {
        const bool zero = !s.announced.get(i);
        const bool r = pred.eval(s.announced.select(others));
        wi_zero += zero ? 1.0 : 0.0;
        pred_true += r ? 1.0 : 0.0;
        joint += (zero && r) ? 1.0 : 0.0;
      }
      wi_zero /= count;
      pred_true /= count;
      joint /= count;
      const double gap = std::abs(wi_zero * pred_true - joint);
      if (gap > verdict.max_gap) {
        verdict.max_gap = gap;
        verdict.worst = {i, pred.name, gap, wi_zero, pred_true, joint};
      }
    }
  }
  verdict.independent = verdict.max_gap <= verdict.radius + options.margin;
  return verdict;
}

}  // namespace simulcast::testers
