// CR-independence tester (Definition 4.3, Chor-Rabin).
//
// For every honest party P_i and every predicate R in a fixed library of
// polynomial-time predicates over the other announced bits, estimate
//     gap(i, R) = | Pr[W_i = 0] * Pr[R(W_{-i})] - Pr[W_i = 0 and R(W_{-i})] |
// over the sampled executions.  The definition requires the gap to be
// negligible for all (i, R); the tester reports the maximum observed gap
// with a Hoeffding confidence radius, and flags a violation when the gap
// clears the radius with margin.
//
// The default predicate library contains the attacks the paper's proofs
// build: the parity predicate of Lemma 6.4 (which nails Π_G under A*), the
// per-coordinate predicates used in the proof of Lemma 6.2, pairwise
// equality, AND/OR and threshold predicates.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "testers/monte_carlo.h"

namespace simulcast::testers {

/// A polynomial-time predicate over W_{-i} (the announced vector minus
/// coordinate i, in increasing-coordinate order).
struct CrPredicate {
  std::string name;
  std::function<bool(const BitVec&)> eval;
};

/// Default predicate library for vectors of n-1 bits.
[[nodiscard]] std::vector<CrPredicate> default_cr_predicates(std::size_t reduced_bits);

struct CrFinding {
  std::size_t party = 0;    ///< honest party index i
  std::string predicate;
  double gap = 0.0;
  double p_wi_zero = 0.0;
  double p_predicate = 0.0;
  double p_joint = 0.0;
};

struct CrVerdict {
  bool independent = true;
  double max_gap = 0.0;
  double radius = 0.0;      ///< Hoeffding radius at the configured confidence
  CrFinding worst;          ///< the (i, R) that realized max_gap
  std::size_t samples = 0;
};

struct CrOptions {
  double alpha = 0.01;          ///< confidence parameter for the radius
  double margin = 0.02;         ///< gap must exceed radius + margin to flag
  std::vector<CrPredicate> predicates;  ///< empty = default library
};

/// Tests the sample set; `corrupted` identifies which coordinates belong to
/// corrupted parties (honest ones are tested as P_i).
[[nodiscard]] CrVerdict test_cr(const std::vector<Sample>& samples,
                                const std::vector<sim::PartyId>& corrupted,
                                const CrOptions& options = {});

}  // namespace simulcast::testers
