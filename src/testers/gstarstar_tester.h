// G**-independence tester (Definition B.2, Appendix B).
//
// G** quantifies over *fixed inputs*: for every corrupted party P_i, every
// corrupted-input vector w and every pair of honest-input vectors (r, s),
//     gap = | Pr[W <- Announced(w ⊔ s) : W_i = 1]
//           - Pr[W <- Announced(w ⊔ r) : W_i = 1] |
// must be negligible, where the probability is over protocol and adversary
// randomness only.  Unlike Definition 4.4 there is no conditioning on a
// random event, which is exactly why the paper introduces G** as the
// technically robust variant (Props. B.3/B.4 relate it to G and G*).
//
// The tester enumerates all honest-input vectors (n - t small) for each
// configured corrupted-input vector, runs a fixed-input Monte-Carlo batch
// per input, and reports the worst pairwise gap per corrupted party.
#pragma once

#include "testers/monte_carlo.h"

namespace simulcast::testers {

struct GssFinding {
  std::size_t party = 0;
  BitVec w;  ///< corrupted inputs
  BitVec r;
  BitVec s;
  double gap = 0.0;
};

struct GssVerdict {
  bool independent = true;
  double max_gap = 0.0;
  double radius = 0.0;
  GssFinding worst;
  std::size_t executions = 0;
};

struct GssOptions {
  std::size_t samples_per_input = 400;   ///< executions per fixed input vector
  double alpha = 0.01;
  double margin = 0.02;
  /// Corrupted-input vectors w to sweep; empty = all-zeros and all-ones.
  std::vector<BitVec> corrupted_inputs;
};

[[nodiscard]] GssVerdict test_gstarstar(const RunSpec& spec, const GssOptions& options,
                                        std::uint64_t seed);

}  // namespace simulcast::testers
