#include "base/bitvec.h"

#include <algorithm>

namespace simulcast {

BitVec BitVec::from_string(std::string_view s) {
  BitVec v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '1')
      v.set(i, true);
    else if (s[i] != '0')
      throw std::invalid_argument("BitVec::from_string: expected '0' or '1'");
  }
  return v;
}

BitVec BitVec::select(const std::vector<std::size_t>& indices) const {
  BitVec out(indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j) out.set(j, get(indices[j]));
  return out;
}

BitVec BitVec::splice(std::size_t n, const std::vector<std::size_t>& g_indices,
                      const BitVec& w, const BitVec& z) {
  const std::vector<std::size_t> b_indices = complement(n, g_indices);
  if (w.size() != g_indices.size())
    throw std::invalid_argument("BitVec::splice: |w| != |G|");
  if (z.size() != b_indices.size())
    throw std::invalid_argument("BitVec::splice: |z| != n - |G|");
  BitVec out(n);
  for (std::size_t j = 0; j < g_indices.size(); ++j) out.set(g_indices[j], w.get(j));
  for (std::size_t j = 0; j < b_indices.size(); ++j) out.set(b_indices[j], z.get(j));
  return out;
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

std::vector<std::size_t> complement(std::size_t n, const std::vector<std::size_t>& set) {
  std::vector<bool> in_set(n, false);
  for (std::size_t i : set) {
    if (i >= n) throw std::invalid_argument("complement: index out of range");
    if (in_set[i]) throw std::invalid_argument("complement: duplicate index");
    in_set[i] = true;
  }
  std::vector<std::size_t> out;
  out.reserve(n - set.size());
  for (std::size_t i = 0; i < n; ++i)
    if (!in_set[i]) out.push_back(i);
  return out;
}

}  // namespace simulcast
