// Byte-buffer helpers: hex encoding and a simple canonical serializer used
// for protocol message payloads and commitment preimages.
//
// The serializer writes length-prefixed fields so that concatenation
// ambiguities (e.g. commit("ab","c") vs commit("a","bc")) cannot occur;
// every protocol in src/protocols builds its hashed transcripts through it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace simulcast {

using Bytes = std::vector<std::uint8_t>;

/// Lowercase hex rendering of a byte buffer.
[[nodiscard]] std::string to_hex(const Bytes& data);

/// Parses lowercase/uppercase hex; throws simulcast::UsageError on bad input.
[[nodiscard]] Bytes from_hex(std::string_view hex);

/// Canonical, unambiguous serializer: every field is written with an
/// explicit tag-free little-endian length prefix.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Adopts `buf` as the output buffer (cleared, capacity kept) — the hook
  /// that lets pooled buffers (sim/pool.h) flow through take() with no
  /// fresh allocation.
  explicit ByteWriter(Bytes&& buf) : buf_(std::move(buf)) { buf_.clear(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Length-prefixed raw bytes.
  void bytes(const Bytes& data);
  /// Length-prefixed string.
  void str(std::string_view s);

  [[nodiscard]] const Bytes& data() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() noexcept { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Mirror-image reader; throws simulcast::ProtocolError on truncated input.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] Bytes bytes();
  [[nodiscard]] std::string str();
  /// True when all input has been consumed.
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t count) const;

  const Bytes& data_;
  std::size_t pos_ = 0;
};

}  // namespace simulcast
