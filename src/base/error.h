// Error hierarchy for the simulcast library.
//
// All library errors derive from simulcast::Error (itself a
// std::runtime_error) so callers can catch the whole library with one
// handler while still distinguishing protocol violations from misuse.
#pragma once

#include <stdexcept>
#include <string>

namespace simulcast {

/// Base class of every exception thrown by the library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A cryptographic check failed (bad commitment opening, invalid VSS share,
/// signature rejection).  These are adversarial conditions, not bugs.
class CryptoError : public Error {
 public:
  using Error::Error;
};

/// A protocol-level violation observed during execution: malformed message,
/// consistency failure between honest parties, missing output.
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// A frame failed its integrity check (net/wire.h CRC32C trailer).  A
/// subclass of ProtocolError so existing handlers keep treating it as
/// malformed traffic; the resilient channels (net/chaos.h) additionally
/// catch it by exact type to count the reject and await a retransmit
/// instead of failing the execution.
class ChecksumError : public ProtocolError {
 public:
  using ProtocolError::ProtocolError;
};

/// API misuse by the caller (bad parameters, wrong phase).
class UsageError : public Error {
 public:
  using Error::Error;
};

/// A cooperative watchdog deadline expired (exec::BatchOptions::rep_timeout):
/// the round scheduler abandoned the execution at a safe boundary.  The
/// engine quarantines the repetition instead of aborting the batch.
class TimeoutError : public Error {
 public:
  using Error::Error;
};

}  // namespace simulcast
