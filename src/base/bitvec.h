// BitVec: a fixed-width vector of bits, n <= 64, packed into one word.
//
// This is the universal value type of the library: party inputs, announced
// vectors (Definition 3.1), and distribution samples are all BitVec.  The
// splice operation implements the paper's "x_G ⊔ z_B" notation (Section 2):
// combine the coordinates of one vector on an index set with the coordinates
// of another on the complement.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace simulcast {

/// Maximum number of parties / bits supported by BitVec.
inline constexpr std::size_t kMaxBits = 64;

class BitVec {
 public:
  BitVec() = default;

  /// Zero vector of `size` bits.  Throws std::invalid_argument if size > 64.
  explicit BitVec(std::size_t size) : size_(check_size(size)) {}

  /// Vector of `size` bits with the low `size` bits of `packed`.
  BitVec(std::size_t size, std::uint64_t packed)
      : bits_(packed & mask(check_size(size))), size_(size) {}

  /// Builds from a string like "0110" where index 0 is the leftmost char.
  static BitVec from_string(std::string_view s);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::uint64_t packed() const noexcept { return bits_; }

  [[nodiscard]] bool get(std::size_t i) const {
    check_index(i);
    return ((bits_ >> i) & 1u) != 0;
  }

  void set(std::size_t i, bool value) {
    check_index(i);
    if (value)
      bits_ |= (std::uint64_t{1} << i);
    else
      bits_ &= ~(std::uint64_t{1} << i);
  }

  /// Number of set bits.
  [[nodiscard]] int popcount() const noexcept { return __builtin_popcountll(bits_); }

  /// XOR of all bits (the parity attacked in Claim 6.6).
  [[nodiscard]] bool parity() const noexcept { return (popcount() & 1) != 0; }

  /// Sub-vector with the coordinates listed in `indices` (the paper's x_S).
  /// Coordinate j of the result is this->get(indices[j]).
  [[nodiscard]] BitVec select(const std::vector<std::size_t>& indices) const;

  /// The paper's splice  w_G ⊔ z_B:  result has w's bits on `g_indices` and
  /// z's bits on the complement of g_indices (in increasing index order).
  /// w must have g_indices.size() bits and z must have n - |G| bits; the
  /// result has n bits.
  static BitVec splice(std::size_t n, const std::vector<std::size_t>& g_indices,
                       const BitVec& w, const BitVec& z);

  /// "0110"-style rendering, index 0 leftmost.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const BitVec& a, const BitVec& b) noexcept {
    return a.size_ == b.size_ && a.bits_ == b.bits_;
  }
  friend bool operator!=(const BitVec& a, const BitVec& b) noexcept { return !(a == b); }
  friend bool operator<(const BitVec& a, const BitVec& b) noexcept {
    return a.size_ != b.size_ ? a.size_ < b.size_ : a.bits_ < b.bits_;
  }

 private:
  static std::size_t check_size(std::size_t size) {
    if (size > kMaxBits) throw std::invalid_argument("BitVec: size > 64");
    return size;
  }
  void check_index(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("BitVec: index out of range");
  }
  static std::uint64_t mask(std::size_t size) noexcept {
    return size == kMaxBits ? ~std::uint64_t{0} : (std::uint64_t{1} << size) - 1;
  }

  std::uint64_t bits_ = 0;
  std::size_t size_ = 0;
};

/// Complement of an index set within [0, n).  Input need not be sorted;
/// output is sorted.  Throws on out-of-range or duplicate indices.
[[nodiscard]] std::vector<std::size_t> complement(std::size_t n,
                                                  const std::vector<std::size_t>& set);

}  // namespace simulcast
