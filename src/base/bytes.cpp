#include "base/bytes.h"

#include "base/error.h"

namespace simulcast {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw UsageError("from_hex: invalid hex digit");
}

}  // namespace

std::string to_hex(const Bytes& data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw UsageError("from_hex: odd-length input");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_digit(hex[i]) * 16 + hex_digit(hex[i + 1])));
  }
  return out;
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void ByteWriter::bytes(const Bytes& data) {
  u32(static_cast<std::uint32_t>(data.size()));
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteReader::need(std::size_t count) const {
  if (pos_ + count > data_.size()) throw ProtocolError("ByteReader: truncated message");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

Bytes ByteReader::bytes() {
  const std::uint32_t len = u32();
  need(len);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

std::string ByteReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

}  // namespace simulcast
