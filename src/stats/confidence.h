// Finite-sample confidence machinery.
//
// The paper's definitional quantities are all of the form "|p - q| is
// negligible in k".  Our Monte-Carlo testers estimate p and q from N
// executions and must decide whether an observed gap is real or noise.  We
// use Hoeffding's inequality for distribution-free two-sided bounds, plus a
// Wilson score interval for reporting.  Verdict rules live in the testers;
// this header supplies only the mathematics.
#pragma once

#include <cstddef>

namespace simulcast::stats {

/// Two-sided Hoeffding radius: with probability >= 1 - alpha the empirical
/// mean of `samples` i.i.d. [0,1]-valued draws is within this radius of the
/// true mean.  radius = sqrt(ln(2/alpha) / (2 * samples)).
[[nodiscard]] double hoeffding_radius(std::size_t samples, double alpha);

/// Radius for the difference of two independent empirical means estimated
/// from `samples_a` and `samples_b` draws (union bound over both sides).
[[nodiscard]] double hoeffding_diff_radius(std::size_t samples_a, std::size_t samples_b,
                                           double alpha);

/// Wilson score interval for a binomial proportion.
struct Interval {
  double low = 0.0;
  double high = 0.0;
  [[nodiscard]] bool contains(double p) const noexcept { return low <= p && p <= high; }
};

/// Wilson interval at confidence 1 - alpha for `successes` out of `trials`.
[[nodiscard]] Interval wilson_interval(std::size_t successes, std::size_t trials, double alpha);

/// Inverse of the standard normal CDF (Acklam's rational approximation;
/// absolute error < 1.2e-8 — ample for confidence levels).
[[nodiscard]] double normal_quantile(double p);

/// Minimum sample count such that hoeffding_radius(samples, alpha) <= radius.
[[nodiscard]] std::size_t samples_for_radius(double radius, double alpha);

}  // namespace simulcast::stats
