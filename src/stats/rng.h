// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in simulcast (protocol randomness, adversary
// randomness, input sampling, Monte-Carlo testers) draws from an Rng that is
// a pure function of an explicit 64-bit seed, so whole experiments replay
// exactly.  The generator is xoshiro256** seeded through SplitMix64, the
// combination recommended by the xoshiro authors.  Rng::fork derives an
// independent child stream from a label, which gives each party / repetition
// its own stream without any shared mutable state.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace simulcast::stats {

/// SplitMix64 step: advances `state` and returns the next output.
/// Used for seeding and for stream derivation; also useful as a cheap
/// stateless mixer.
[[nodiscard]] std::uint64_t split_mix64(std::uint64_t& state) noexcept;

/// Mixes arbitrary bytes into a 64-bit value (FNV-1a followed by a SplitMix64
/// finalizer).  Not cryptographic; used only to derive RNG stream labels.
[[nodiscard]] std::uint64_t mix_label(std::string_view label) noexcept;

/// xoshiro256** generator with explicit-seed construction and labelled
/// forking.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next 64 uniform bits.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire rejection).
  /// Precondition: bound > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform bit.
  [[nodiscard]] bool bit() noexcept { return (operator()() >> 63) != 0; }

  /// Bernoulli(p) draw; p is clamped to [0,1].
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Uniform double in [0,1) with 53 bits of precision.
  [[nodiscard]] double uniform01() noexcept;

  /// `count` uniform bytes.
  [[nodiscard]] std::vector<std::uint8_t> bytes(std::size_t count);

  /// Derives an independent child generator.  Children forked with distinct
  /// (label, index) pairs have distinct, fixed seeds; forking does not
  /// advance this generator, so adding forks never perturbs existing
  /// replayed streams.
  [[nodiscard]] Rng fork(std::string_view label, std::uint64_t index = 0) const noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_;  // retained so fork() is a pure function of the seed
};

}  // namespace simulcast::stats
