#include "stats/confidence.h"

#include <cmath>

#include "base/error.h"

namespace simulcast::stats {

double hoeffding_radius(std::size_t samples, double alpha) {
  if (samples == 0) throw UsageError("hoeffding_radius: samples == 0");
  if (alpha <= 0.0 || alpha >= 1.0) throw UsageError("hoeffding_radius: alpha out of (0,1)");
  return std::sqrt(std::log(2.0 / alpha) / (2.0 * static_cast<double>(samples)));
}

double hoeffding_diff_radius(std::size_t samples_a, std::size_t samples_b, double alpha) {
  return hoeffding_radius(samples_a, alpha / 2.0) + hoeffding_radius(samples_b, alpha / 2.0);
}

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) throw UsageError("normal_quantile: p out of (0,1)");
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  double q = 0.0;
  double r = 0.0;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

Interval wilson_interval(std::size_t successes, std::size_t trials, double alpha) {
  if (trials == 0) throw UsageError("wilson_interval: trials == 0");
  if (successes > trials) throw UsageError("wilson_interval: successes > trials");
  const double z = normal_quantile(1.0 - alpha / 2.0);
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half = z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return {center - half, center + half};
}

std::size_t samples_for_radius(double radius, double alpha) {
  if (radius <= 0.0) throw UsageError("samples_for_radius: radius <= 0");
  const double n = std::log(2.0 / alpha) / (2.0 * radius * radius);
  return static_cast<std::size_t>(std::ceil(n));
}

}  // namespace simulcast::stats
