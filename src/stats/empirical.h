// Empirical distributions over n-bit vectors.
//
// The independence testers (src/testers) reduce every definitional quantity
// of the paper to probabilities of events over the announced vector W
// (Definition 3.1).  EmpiricalDist accumulates samples and answers marginal,
// joint and conditional queries; ExactDist holds an explicit pmf over
// {0,1}^n (n small) for the distribution-class computations of Section 5,
// where exact arithmetic avoids any sampling noise.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "base/bitvec.h"

namespace simulcast::stats {

/// An event over n-bit vectors.
using Event = std::function<bool(const BitVec&)>;

/// Sample-based distribution over {0,1}^n.
class EmpiricalDist {
 public:
  explicit EmpiricalDist(std::size_t bits) : bits_(bits) {}

  void add(const BitVec& sample);

  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }
  [[nodiscard]] std::size_t count() const noexcept { return total_; }

  /// Empirical Pr[event].  Returns 0 when no samples were added.
  [[nodiscard]] double prob(const Event& event) const;

  /// Empirical Pr[a ∧ b].
  [[nodiscard]] double joint(const Event& a, const Event& b) const;

  /// Empirical Pr[a | b]; nullopt when Pr[b] = 0.
  [[nodiscard]] std::optional<double> conditional(const Event& a, const Event& b) const;

  /// Empirical marginal Pr[bit i = 1].
  [[nodiscard]] double marginal_one(std::size_t i) const;

  /// Distinct observed values with their counts, sorted by value.
  [[nodiscard]] const std::map<BitVec, std::size_t>& counts() const noexcept { return counts_; }

  /// Total-variation distance to another empirical distribution over the
  /// same bit width.
  [[nodiscard]] double tv_distance(const EmpiricalDist& other) const;

 private:
  std::size_t bits_;
  std::size_t total_ = 0;
  std::map<BitVec, std::size_t> counts_;
};

/// Exact pmf over {0,1}^n, n <= 20.  Probabilities are stored densely,
/// indexed by BitVec::packed().
class ExactDist {
 public:
  /// `pmf[v]` is Pr[X = v]; must sum to 1 within 1e-9.
  ExactDist(std::size_t bits, std::vector<double> pmf);

  /// Point mass on `value`.
  static ExactDist singleton(const BitVec& value);

  /// Product of independent Bernoulli(p_i) bits.
  static ExactDist product(const std::vector<double>& p);

  /// Uniform over {0,1}^bits.
  static ExactDist uniform(std::size_t bits);

  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }
  [[nodiscard]] double pmf(const BitVec& v) const;
  [[nodiscard]] const std::vector<double>& raw_pmf() const noexcept { return pmf_; }

  /// Pr[X_S = u] for the coordinates in `set` (the paper's D_B).
  [[nodiscard]] double marginal(const std::vector<std::size_t>& set, const BitVec& u) const;

  /// Pr[X_S = u | X_T = w]; nullopt when Pr[X_T = w] = 0.
  [[nodiscard]] std::optional<double> conditional(const std::vector<std::size_t>& set,
                                                  const BitVec& u,
                                                  const std::vector<std::size_t>& cond_set,
                                                  const BitVec& w) const;

  /// Product of this distribution's single-bit marginals — the natural
  /// candidate product distribution for the Ψ_{C,n} membership test.
  [[nodiscard]] ExactDist product_of_marginals() const;

  /// Total-variation distance to another exact distribution.
  [[nodiscard]] double tv_distance(const ExactDist& other) const;

  /// The paper's D_B ⊔ R_B̄ on exact distributions: sample the coordinates in
  /// `b_set` from `this` and the rest from `other`, independently.
  [[nodiscard]] ExactDist splice(const std::vector<std::size_t>& b_set,
                                 const ExactDist& other) const;

 private:
  std::size_t bits_;
  std::vector<double> pmf_;
};

}  // namespace simulcast::stats
