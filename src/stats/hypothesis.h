// Classical hypothesis tests used by the distribution-class testers
// (Section 5) and as secondary evidence in the independence testers.
//
// chi2_independence tests H0: "bit i and the remaining bits are independent"
// on a 2 x m contingency table built from samples; the G-test is the
// likelihood-ratio variant, more robust for sparse tables.  Both reduce to
// the chi-square survival function, implemented via the regularized
// incomplete gamma function.
#pragma once

#include <cstddef>
#include <vector>

#include "base/bitvec.h"
#include "stats/empirical.h"

namespace simulcast::stats {

/// Result of a contingency-table test.
struct TestResult {
  double statistic = 0.0;      ///< chi-square or G statistic
  double degrees = 0.0;        ///< degrees of freedom
  double p_value = 1.0;        ///< survival probability under H0
  [[nodiscard]] bool rejects(double alpha) const noexcept { return p_value < alpha; }
};

/// Regularized lower incomplete gamma P(a, x) by series / continued fraction
/// (Numerical-Recipes style); a > 0, x >= 0.
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Survival function of the chi-square distribution with `k` d.o.f.
[[nodiscard]] double chi2_sf(double statistic, double k);

/// Pearson chi-square test of independence between bit `i` and the joint
/// value of the remaining bits, over the samples in `dist`.  Cells with zero
/// expected count are pooled away.
[[nodiscard]] TestResult chi2_independence(const EmpiricalDist& dist, std::size_t i);

/// Likelihood-ratio (G) test of the same hypothesis.
[[nodiscard]] TestResult g_test_independence(const EmpiricalDist& dist, std::size_t i);

/// Pearson goodness-of-fit of empirical samples against an exact pmf.
[[nodiscard]] TestResult chi2_goodness_of_fit(const EmpiricalDist& dist, const ExactDist& model);

}  // namespace simulcast::stats
