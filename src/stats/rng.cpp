#include "stats/rng.h"

namespace simulcast::stats {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_label(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  std::uint64_t s = h;
  return split_mix64(s);
}

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = split_mix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method with rejection.
  using u128 = unsigned __int128;
  std::uint64_t x = operator()();
  u128 m = static_cast<u128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = operator()();
      m = static_cast<u128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::uniform01() noexcept {
  return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
}

std::vector<std::uint8_t> Rng::bytes(std::size_t count) {
  std::vector<std::uint8_t> out(count);
  std::size_t i = 0;
  while (i < count) {
    std::uint64_t word = operator()();
    for (int b = 0; b < 8 && i < count; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(word & 0xff);
      word >>= 8;
    }
  }
  return out;
}

Rng Rng::fork(std::string_view label, std::uint64_t index) const noexcept {
  std::uint64_t s = seed_;
  s ^= mix_label(label);
  s ^= 0x6a09e667f3bcc909ULL + index * 0x9e3779b97f4a7c15ULL;
  std::uint64_t mixer = s;
  return Rng(split_mix64(mixer));
}

}  // namespace simulcast::stats
