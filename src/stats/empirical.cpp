#include "stats/empirical.h"

#include <cmath>
#include <numeric>

#include "base/error.h"

namespace simulcast::stats {

void EmpiricalDist::add(const BitVec& sample) {
  if (sample.size() != bits_) throw UsageError("EmpiricalDist::add: wrong bit width");
  ++counts_[sample];
  ++total_;
}

double EmpiricalDist::prob(const Event& event) const {
  if (total_ == 0) return 0.0;
  std::size_t hits = 0;
  for (const auto& [value, count] : counts_)
    if (event(value)) hits += count;
  return static_cast<double>(hits) / static_cast<double>(total_);
}

double EmpiricalDist::joint(const Event& a, const Event& b) const {
  return prob([&](const BitVec& v) { return a(v) && b(v); });
}

std::optional<double> EmpiricalDist::conditional(const Event& a, const Event& b) const {
  const double pb = prob(b);
  if (pb == 0.0) return std::nullopt;
  return joint(a, b) / pb;
}

double EmpiricalDist::marginal_one(std::size_t i) const {
  return prob([i](const BitVec& v) { return v.get(i); });
}

double EmpiricalDist::tv_distance(const EmpiricalDist& other) const {
  if (other.bits_ != bits_) throw UsageError("tv_distance: bit widths differ");
  double sum = 0.0;
  auto it_a = counts_.begin();
  auto it_b = other.counts_.begin();
  const auto p_a = [&](std::size_t c) {
    return total_ ? static_cast<double>(c) / static_cast<double>(total_) : 0.0;
  };
  const auto p_b = [&](std::size_t c) {
    return other.total_ ? static_cast<double>(c) / static_cast<double>(other.total_) : 0.0;
  };
  while (it_a != counts_.end() || it_b != other.counts_.end()) {
    if (it_b == other.counts_.end() || (it_a != counts_.end() && it_a->first < it_b->first)) {
      sum += p_a(it_a->second);
      ++it_a;
    } else if (it_a == counts_.end() || it_b->first < it_a->first) {
      sum += p_b(it_b->second);
      ++it_b;
    } else {
      sum += std::abs(p_a(it_a->second) - p_b(it_b->second));
      ++it_a;
      ++it_b;
    }
  }
  return sum / 2.0;
}

ExactDist::ExactDist(std::size_t bits, std::vector<double> pmf)
    : bits_(bits), pmf_(std::move(pmf)) {
  if (bits > 20) throw UsageError("ExactDist: bits > 20");
  if (pmf_.size() != (std::size_t{1} << bits))
    throw UsageError("ExactDist: pmf size != 2^bits");
  double sum = std::accumulate(pmf_.begin(), pmf_.end(), 0.0);
  if (std::abs(sum - 1.0) > 1e-9) throw UsageError("ExactDist: pmf does not sum to 1");
  for (double p : pmf_)
    if (p < -1e-15) throw UsageError("ExactDist: negative probability");
}

ExactDist ExactDist::singleton(const BitVec& value) {
  std::vector<double> pmf(std::size_t{1} << value.size(), 0.0);
  pmf[value.packed()] = 1.0;
  return {value.size(), std::move(pmf)};
}

ExactDist ExactDist::product(const std::vector<double>& p) {
  const std::size_t n = p.size();
  std::vector<double> pmf(std::size_t{1} << n, 1.0);
  for (std::size_t v = 0; v < pmf.size(); ++v) {
    for (std::size_t i = 0; i < n; ++i) {
      const bool one = ((v >> i) & 1u) != 0;
      pmf[v] *= one ? p[i] : (1.0 - p[i]);
    }
  }
  return {n, std::move(pmf)};
}

ExactDist ExactDist::uniform(std::size_t bits) {
  return product(std::vector<double>(bits, 0.5));
}

double ExactDist::pmf(const BitVec& v) const {
  if (v.size() != bits_) throw UsageError("ExactDist::pmf: wrong width");
  return pmf_[v.packed()];
}

double ExactDist::marginal(const std::vector<std::size_t>& set, const BitVec& u) const {
  if (u.size() != set.size()) throw UsageError("ExactDist::marginal: |u| != |set|");
  double sum = 0.0;
  for (std::size_t v = 0; v < pmf_.size(); ++v) {
    const BitVec full(bits_, v);
    if (full.select(set) == u) sum += pmf_[v];
  }
  return sum;
}

std::optional<double> ExactDist::conditional(const std::vector<std::size_t>& set,
                                             const BitVec& u,
                                             const std::vector<std::size_t>& cond_set,
                                             const BitVec& w) const {
  double joint = 0.0;
  double cond = 0.0;
  for (std::size_t v = 0; v < pmf_.size(); ++v) {
    const BitVec full(bits_, v);
    if (full.select(cond_set) != w) continue;
    cond += pmf_[v];
    if (full.select(set) == u) joint += pmf_[v];
  }
  if (cond == 0.0) return std::nullopt;
  return joint / cond;
}

ExactDist ExactDist::product_of_marginals() const {
  std::vector<double> p(bits_);
  for (std::size_t i = 0; i < bits_; ++i) p[i] = marginal({i}, BitVec(1, 1));
  return product(p);
}

double ExactDist::tv_distance(const ExactDist& other) const {
  if (other.bits_ != bits_) throw UsageError("tv_distance: bit widths differ");
  double sum = 0.0;
  for (std::size_t v = 0; v < pmf_.size(); ++v) sum += std::abs(pmf_[v] - other.pmf_[v]);
  return sum / 2.0;
}

ExactDist ExactDist::splice(const std::vector<std::size_t>& b_set, const ExactDist& other) const {
  if (other.bits_ != bits_) throw UsageError("splice: bit widths differ");
  const auto rest = complement(bits_, b_set);
  std::vector<double> pmf(pmf_.size(), 0.0);
  for (std::size_t v = 0; v < pmf_.size(); ++v) {
    const BitVec full(bits_, v);
    pmf[v] = marginal(b_set, full.select(b_set)) * other.marginal(rest, full.select(rest));
  }
  return {bits_, std::move(pmf)};
}

}  // namespace simulcast::stats
