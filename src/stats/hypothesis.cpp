#include "stats/hypothesis.h"

#include <cmath>
#include <map>

#include "base/error.h"

namespace simulcast::stats {

namespace {

// Contingency table: rows indexed by bit i (0/1), columns by the packed
// value of the remaining bits.
struct Table {
  std::map<std::uint64_t, std::array<double, 2>> cells;
  double row_total[2] = {0.0, 0.0};
  double grand = 0.0;
};

Table build_table(const EmpiricalDist& dist, std::size_t i) {
  Table t;
  for (const auto& [value, count] : dist.counts()) {
    const int row = value.get(i) ? 1 : 0;
    // Pack the remaining bits by clearing bit i and compacting.
    std::uint64_t rest = 0;
    std::size_t out_bit = 0;
    for (std::size_t j = 0; j < value.size(); ++j) {
      if (j == i) continue;
      if (value.get(j)) rest |= (std::uint64_t{1} << out_bit);
      ++out_bit;
    }
    auto& cell = t.cells[rest];
    cell[static_cast<std::size_t>(row)] += static_cast<double>(count);
    t.row_total[row] += static_cast<double>(count);
    t.grand += static_cast<double>(count);
  }
  return t;
}

template <typename CellTerm>
TestResult table_test(const EmpiricalDist& dist, std::size_t i, CellTerm term) {
  if (i >= dist.bits()) throw UsageError("independence test: bit index out of range");
  const Table t = build_table(dist, i);
  if (t.grand == 0.0 || t.cells.empty()) return {0.0, 0.0, 1.0};
  double stat = 0.0;
  std::size_t used_columns = 0;
  for (const auto& [rest, cell] : t.cells) {
    const double col_total = cell[0] + cell[1];
    if (col_total == 0.0) continue;
    ++used_columns;
    for (int row = 0; row < 2; ++row) {
      const double expected = t.row_total[row] * col_total / t.grand;
      if (expected <= 0.0) continue;
      stat += term(cell[static_cast<std::size_t>(row)], expected);
    }
  }
  const double rows_minus_1 = (t.row_total[0] > 0.0 && t.row_total[1] > 0.0) ? 1.0 : 0.0;
  const double dof = rows_minus_1 * static_cast<double>(used_columns > 0 ? used_columns - 1 : 0);
  if (dof == 0.0) return {stat, 0.0, 1.0};
  return {stat, dof, chi2_sf(stat, dof)};
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (a <= 0.0 || x < 0.0) throw UsageError("regularized_gamma_p: bad arguments");
  if (x == 0.0) return 0.0;
  constexpr int kMaxIter = 500;
  constexpr double kEps = 1e-14;
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < kMaxIter; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::abs(del) < std::abs(sum) * kEps) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  // Continued fraction for Q(a, x); P = 1 - Q.
  constexpr double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  const double q = std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
  return 1.0 - q;
}

double chi2_sf(double statistic, double k) {
  if (statistic <= 0.0) return 1.0;
  return 1.0 - regularized_gamma_p(k / 2.0, statistic / 2.0);
}

TestResult chi2_independence(const EmpiricalDist& dist, std::size_t i) {
  return table_test(dist, i, [](double observed, double expected) {
    const double diff = observed - expected;
    return diff * diff / expected;
  });
}

TestResult g_test_independence(const EmpiricalDist& dist, std::size_t i) {
  return table_test(dist, i, [](double observed, double expected) {
    if (observed <= 0.0) return 0.0;
    return 2.0 * observed * std::log(observed / expected);
  });
}

TestResult chi2_goodness_of_fit(const EmpiricalDist& dist, const ExactDist& model) {
  if (dist.bits() != model.bits()) throw UsageError("goodness_of_fit: widths differ");
  const double n = static_cast<double>(dist.count());
  if (n == 0.0) return {0.0, 0.0, 1.0};
  double stat = 0.0;
  std::size_t cells = 0;
  for (std::size_t v = 0; v < model.raw_pmf().size(); ++v) {
    const double expected = model.raw_pmf()[v] * n;
    if (expected <= 0.0) continue;
    ++cells;
    double observed = 0.0;
    const BitVec key(model.bits(), v);
    auto it = dist.counts().find(key);
    if (it != dist.counts().end()) observed = static_cast<double>(it->second);
    const double diff = observed - expected;
    stat += diff * diff / expected;
  }
  const double dof = cells > 1 ? static_cast<double>(cells - 1) : 0.0;
  if (dof == 0.0) return {stat, 0.0, 1.0};
  return {stat, dof, chi2_sf(stat, dof)};
}

}  // namespace simulcast::stats
