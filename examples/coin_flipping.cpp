// Collective coin flipping: the application that shaped the definitions.
//
// n parties each contribute a random bit; the collective coin is the XOR of
// the announced bits.  If the broadcast is simultaneous, no coalition can
// bias the coin beyond aborting.  This example measures the empirical coin
// bias in three configurations:
//
//   1. gennaro, all honest                          -> fair coin;
//   2. gennaro, 2 passive corruptions               -> still fair;
//   3. flawed-pi-g under the paper's A* adversary   -> the coin is ALWAYS 0
//      (Claim 6.6), even though each corrupted party's own announced bit
//      looks perfectly random - the exact trap G-independence fails to
//      catch, and the reason the paper ranks Gennaro's definition weakest.
#include <iomanip>
#include <iostream>

#include "core/session.h"
#include "stats/rng.h"

namespace {

using namespace simulcast;

struct CoinStats {
  double bias = 0.0;          ///< Pr[coin = 1] - 1/2
  double corrupted_one = 0.0; ///< Pr[first corrupted announced bit = 1]
};

CoinStats measure(const std::string& protocol, const std::vector<sim::PartyId>& corrupted,
                  const adversary::AdversaryFactory& factory, std::uint64_t seed,
                  std::size_t reps) {
  core::Session session(protocol, 5);
  stats::Rng rng(seed);
  std::size_t ones = 0;
  std::size_t corrupted_ones = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    BitVec inputs(5);
    for (std::size_t i = 0; i < 5; ++i) inputs.set(i, rng.bit());
    const auto result =
        session.run_with_adversary(inputs, corrupted, factory, rng.fork("run", rep)());
    if (result.announced.parity()) ++ones;
    if (!corrupted.empty() && result.announced.get(corrupted.front())) ++corrupted_ones;
  }
  CoinStats stats;
  stats.bias = static_cast<double>(ones) / static_cast<double>(reps) - 0.5;
  stats.corrupted_one =
      corrupted.empty() ? 0.5 : static_cast<double>(corrupted_ones) / static_cast<double>(reps);
  return stats;
}

}  // namespace

int main() {
  constexpr std::size_t kReps = 2000;
  std::cout << std::fixed << std::setprecision(4)
            << "collective coin = XOR of announced bits, n = 5, " << kReps
            << " flips per row\n\n";

  const CoinStats honest = measure("gennaro", {}, adversary::silent_factory(), 1, kReps);
  std::cout << "gennaro, all honest:             coin bias " << std::showpos << honest.bias
            << std::noshowpos << "\n";

  {
    core::Session session("gennaro", 5);
    sim::ProtocolParams params = session.params();
    const CoinStats passive = measure(
        "gennaro", {1, 3}, adversary::passive_factory(session.protocol(), params), 2, kReps);
    std::cout << "gennaro, {1,3} passive:          coin bias " << std::showpos << passive.bias
              << std::noshowpos << " (corrupted bit looks Bernoulli("
              << passive.corrupted_one << "))\n";
  }

  const CoinStats rigged =
      measure("flawed-pi-g", {1, 3}, adversary::parity_factory(), 3, kReps);
  std::cout << "flawed-pi-g, A* attack:          coin bias " << std::showpos << rigged.bias
            << std::noshowpos << " (corrupted bit STILL looks Bernoulli("
            << rigged.corrupted_one << "))\n\n";

  std::cout << "The rigged row is Lemma 6.4 in action: every individual announced bit\n"
               "passes any marginal randomness test (G-independence holds), yet the\n"
               "coin is deterministic - its XOR is 0 in every single execution.  Only\n"
               "a joint notion (CR / Sb) rejects this protocol; run\n"
               "./build/bench/bench_e4_separation_g_cr for the full measurement.\n";

  return (std::abs(honest.bias) < 0.05 && rigged.bias < -0.45) ? 0 : 1;
}
