// explore - compose protocol x adversary x distribution x tester from the
// command line.  The "downstream user" tool: reproduce any cell of the
// paper's experiment grid without writing code.
//
//   explore <protocol> <adversary> <distribution> [options]
//
//   protocols     seq-broadcast | cgma | chor-rabin | gennaro |
//                 naive-commit-reveal | flawed-pi-g | flawed-pi-g-mpc |
//                 seq-broadcast-ds
//   adversaries   none | passive | silent | copy | parity | abort
//   distributions uniform | singleton:<bits> | copy | parity-even |
//                 product:<p0,p1,...>
//   options       --n=<parties=5> --corrupt=<i,j,...> --samples=<N=2000>
//                 --seed=<s=1> --threads=<T=SIMULCAST_THREADS or 1>
//                 --json=<PATH> --trace=<PATH>
//                 --drop=<P> --delay=<R> --crash=<party@round,...>
//
// --threads (or the SIMULCAST_THREADS environment variable) shards the
// sample collection across a thread pool; results are bit-identical for
// every thread count (see DESIGN.md, "exec engine seeding contract").
// --json / --trace route the run through the same core::finish_experiment
// epilogue as the bench drivers: BENCH_explore_*.json records and
// Perfetto-loadable TRACE_explore_*.json traces land under PATH.
// --drop / --delay / --crash install a deterministic sim::FaultPlan
// (sim/faults.h) applied to every execution; fault counters surface in the
// [exec] line and the emitted record.
//
// Examples:
//   explore flawed-pi-g parity uniform --corrupt=1,3
//   explore seq-broadcast copy singleton:1011 --n=4 --corrupt=3
//   explore gennaro passive product:0.3,0.7,0.5,0.8 --n=4 --corrupt=2
#include <iostream>
#include <sstream>

#include "core/registry.h"
#include "core/report.h"
#include "exec/runner.h"
#include "net/transport.h"
#include "net/worker.h"
#include "obs/trace.h"
#include "testers/cr_tester.h"
#include "testers/g_tester.h"
#include "testers/sb_tester.h"

namespace {

using namespace simulcast;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: explore <protocol> <adversary> <distribution> "
               "[--n=5] [--corrupt=i,j] [--samples=2000] [--seed=1] [--threads=1] "
               "[--transport=inproc|socket|process] [--net-timeout=S] [--chaos=SPEC] "
               "[--json=PATH] [--trace=PATH] "
               "[--drop=P] [--delay=R] [--crash=party@round,...] "
               "[--checkpoint=PATH] [--resume] [--rep-timeout=S] [--retries=N] "
               "[--stop-after=K]\n"
               "run 'explore list' to enumerate the registered protocols.\n";
  std::exit(2);
}

std::vector<sim::PartyId> parse_ids(const std::string& csv) {
  std::vector<sim::PartyId> ids;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) ids.push_back(std::stoul(item));
  return ids;
}

std::vector<double> parse_probs(const std::string& csv) {
  std::vector<double> p;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) p.push_back(std::stod(item));
  return p;
}

std::shared_ptr<dist::InputEnsemble> make_ensemble(const std::string& spec, std::size_t n) {
  if (spec == "uniform") return dist::make_uniform(n);
  if (spec == "copy") return std::make_shared<dist::NoisyCopyEnsemble>(n, 0.0);
  if (spec == "parity-even") return std::make_shared<dist::EvenParityEnsemble>(n);
  if (spec.rfind("singleton:", 0) == 0)
    return std::make_shared<dist::SingletonEnsemble>(BitVec::from_string(spec.substr(10)));
  if (spec.rfind("product:", 0) == 0)
    return std::make_shared<dist::ProductEnsemble>(parse_probs(spec.substr(8)));
  usage("unknown distribution '" + spec + "'");
}

}  // namespace

int main(int argc, char** argv) {
  // Worker dispatch must run before the positional-argument checks: a
  // re-exec'd process-transport worker carries no positionals, only the
  // --simulcast-worker-* flags (configure_threads below never sees them —
  // it is handed argv offset past the positionals).
  if (const int worker_rc = simulcast::net::maybe_worker_main(argc, argv); worker_rc >= 0)
    return worker_rc;
  if (argc >= 2 && std::string(argv[1]) == "list") {
    for (const std::string& name : core::protocol_names()) std::cout << name << "\n";
    return 0;
  }
  if (argc < 4) usage();
  const std::string protocol_name = argv[1];
  const std::string adversary_name = argv[2];
  const std::string dist_spec = argv[3];

  // The uniform knobs (--threads, --transport, --json, --trace, the fault
  // and resilience flags) go through the same strict parser every bench
  // driver uses: an unknown or repeated option exits 2 there, so explore's
  // own loop only sees its four pass-through knobs.  argv is offset past
  // the three positionals, which configure_threads must not see.
  exec::configure_threads(argc - 3, argv + 3,
                          {"--n=", "--corrupt=", "--samples=", "--seed="});
  std::size_t n = 5;
  std::vector<sim::PartyId> corrupted;
  std::size_t samples = 2000;
  std::uint64_t seed = 1;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0)
      n = std::stoul(arg.substr(4));
    else if (arg.rfind("--corrupt=", 0) == 0)
      corrupted = parse_ids(arg.substr(10));
    else if (arg.rfind("--samples=", 0) == 0)
      samples = std::stoul(arg.substr(10));
    else if (arg.rfind("--seed=", 0) == 0)
      seed = std::stoull(arg.substr(7));
  }
  if (samples == 0) usage("--samples must be at least 1");
  if (exec::default_batch_options().resume && exec::default_batch_options().checkpoint_path.empty())
    usage("--resume requires --checkpoint=PATH");
  const sim::FaultPlan& faults = exec::default_fault_plan();

  try {
    const auto proto = core::make_protocol(protocol_name);
    const auto ensemble = make_ensemble(dist_spec, n);
    if (ensemble->bits() != n) usage("distribution width != --n");

    static const crypto::HashCommitmentScheme scheme;
    testers::RunSpec spec;
    spec.protocol = proto.get();
    spec.params.n = n;
    spec.params.commitments = &scheme;
    spec.corrupted = corrupted;
    if (adversary_name == "none" || adversary_name == "silent")
      spec.adversary = adversary::silent_factory();
    else if (adversary_name == "passive")
      spec.adversary = adversary::passive_factory(*proto, spec.params);
    else if (adversary_name == "copy")
      spec.adversary = adversary::copy_last_factory(0);
    else if (adversary_name == "parity")
      spec.adversary = adversary::parity_factory();
    else if (adversary_name == "abort")
      spec.adversary = adversary::selective_abort_factory(0, scheme);
    else
      usage("unknown adversary '" + adversary_name + "'");

    std::ostringstream setup;
    setup << protocol_name << " x " << adversary_name << " x " << ensemble->name() << "  (n="
          << n << ", corrupt={";
    for (std::size_t i = 0; i < corrupted.size(); ++i)
      setup << (i ? "," : "") << corrupted[i];
    setup << "}, " << samples << " executions, seed " << seed << ")";
    if (!faults.empty()) setup << "  faults: " << faults.summary();
    std::cout << "running " << setup.str() << "\n\n";

    obs::ExperimentRecord rec;
    rec.id = "explore/" + protocol_name + "-" + adversary_name + "-" + dist_spec;
    rec.paper_claim = "exploration run: no pinned claim, verdicts are observations";
    rec.setup = setup.str();
    rec.seed = seed;

    const auto batch = testers::collect_batch(spec, *ensemble, samples, seed);
    const auto& sample_set = batch.samples;
    rec.perf.report = batch.report;
    const double consistency = testers::consistency_rate(sample_set);
    std::cout << "consistency rate: " << core::fmt(consistency) << "\n";
    rec.cells.push_back({"consistency",
                         obs::check(true, "rate " + core::fmt(consistency))});
    const auto cr = testers::test_cr(sample_set, spec.corrupted);
    std::cout << core::describe(cr) << "\n";
    rec.cells.push_back({"CR", obs::record(cr)});
    if (!spec.corrupted.empty()) {
      const auto g = testers::test_g(sample_set, spec.corrupted);
      std::cout << core::describe(g) << "\n";
      rec.cells.push_back({"G", obs::record(g)});
    }
    testers::SbOptions sb_options;
    sb_options.samples = std::min<std::size_t>(samples, 800);
    const auto sb = testers::test_sb(spec, *ensemble, sb_options, seed + 1);
    std::cout << core::describe(sb) << "\n";
    rec.cells.push_back({"Sb", obs::record(sb)});
    std::cout << "\n";

    // Exploration has no expected outcome, so the run "reproduces" iff it
    // completed; the per-cell verdicts carry the observations.
    rec.reproduced = true;
    std::ostringstream detail;
    detail << rec.cells.size() << " verdict cells observed, consistency "
           << core::fmt(consistency);
    rec.detail = detail.str();
    return core::finish_experiment(rec);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
