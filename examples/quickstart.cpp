// Quickstart: five parties simultaneously broadcast one bit each.
//
// Shows the three-line happy path (pick a protocol, run, read the announced
// vector), then the attack that motivates the whole library: under plain
// sequential broadcast a rushing corrupted party copies an honest bit,
// while under a simultaneous-broadcast protocol (Gennaro's constant-round
// construction) the same adversary gains nothing.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/session.h"

int main() {
  using namespace simulcast;

  // --- 1. Honest simultaneous broadcast in three lines. -------------------
  core::Session session("gennaro", /*n=*/5);
  const BitVec inputs = BitVec::from_string("10110");
  const core::SessionResult result = session.run(inputs, /*seed=*/42);

  std::cout << "honest run (gennaro, n=5)\n"
            << "  inputs    : " << inputs.to_string() << "\n"
            << "  announced : " << result.announced.to_string() << "\n"
            << "  consistent: " << (result.consistent ? "yes" : "no")
            << ", correct: " << (result.correct ? "yes" : "no") << ", rounds: " << result.rounds
            << ", messages: " << result.messages() << "\n\n";

  // --- 2. Why "parallel" is not "simultaneous". ---------------------------
  // Party 4 is corrupted and copies party 0's announcement.  Sequential
  // broadcast lets it: it announces after hearing P0.
  core::Session seq("seq-broadcast", 5);
  std::cout << "copy attack on seq-broadcast (P4 copies P0):\n";
  for (const bool victim_bit : {false, true}) {
    BitVec x = BitVec::from_string("01100");
    x.set(0, victim_bit);
    const auto attacked =
        seq.run_with_adversary(x, {4}, adversary::copy_last_factory(0), /*seed=*/7);
    std::cout << "  P0 input " << victim_bit << " -> P4 announced "
              << attacked.announced.get(4) << "   (announced: "
              << attacked.announced.to_string() << ")\n";
  }

  // The same adversary interface against Gennaro's protocol: P4 would have
  // to fix its bit before anything is revealed, so the best it can do by
  // deviating is be announced with the default 0.
  std::cout << "same idea against gennaro: a party that refuses to commit is "
               "announced 0 regardless of honest inputs:\n";
  for (const bool victim_bit : {false, true}) {
    BitVec x = BitVec::from_string("01100");
    x.set(0, victim_bit);
    const auto defended =
        session.run_with_adversary(x, {4}, adversary::silent_factory(), /*seed=*/7);
    std::cout << "  P0 input " << victim_bit << " -> P4 announced "
              << defended.announced.get(4) << "   (announced: "
              << defended.announced.to_string() << ")\n";
  }
  std::cout << "\nSee examples/sealed_bid_auction.cpp and examples/coin_flipping.cpp for\n"
               "what this buys in applications, and bench/ for the paper's experiments.\n";
  return 0;
}
