// Sealed-bid auction on top of simultaneous broadcast.
//
// The paper's introduction names contract bidding as a driving application:
// bids must be mutually independent or a rushing bidder can shade the
// leader's bid.  This example runs a first-price auction where each of four
// bidders holds a 4-bit valuation, revealed bit-serially (MSB first) with
// one broadcast session per bit position:
//
//   - with seq-broadcast as the per-bit primitive, corrupted bidder 3
//     copies bidder 0's bits and ties the winning bid without knowing
//     anything about valuations in advance;
//   - with gennaro as the primitive, the same strategy collapses: unable
//     to copy inside a session, the cheater is announced 0 on every bit.
//
// The bit-serial chaining uses core::ValueBroadcast, the library's
// multi-bit lift of a one-bit simultaneous broadcast.
#include <array>
#include <iostream>

#include "core/multi.h"

namespace {

using namespace simulcast;

constexpr std::size_t kBidders = 4;
constexpr std::size_t kBits = 4;  // valuations in [0, 15]

struct AuctionOutcome {
  std::array<unsigned, kBidders> bids{};
  std::size_t winner = 0;
};

/// Runs the bit-serial auction over the chosen protocol; bidder 3 may be
/// corrupted and driven by `factory`.
AuctionOutcome run_auction(const std::string& protocol,
                           const std::array<unsigned, kBidders>& valuations, bool corrupt_last,
                           std::uint64_t seed) {
  const core::ValueBroadcast vb(protocol, kBidders, kBits);
  std::vector<std::uint64_t> values(valuations.begin(), valuations.end());

  core::ValueBroadcastResult result;
  if (corrupt_last) {
    // Bidder 3 copies bidder 0's bit where the protocol allows it.
    const adversary::AdversaryFactory factory =
        protocol == "seq-broadcast" ? adversary::copy_last_factory(0)
                                    : adversary::silent_factory();
    result = vb.run_with_adversary(values, {3}, factory, seed);
  } else {
    result = vb.run(values, seed);
  }

  AuctionOutcome outcome;
  for (std::size_t b = 0; b < kBidders; ++b)
    outcome.bids[b] = static_cast<unsigned>(result.announced[b]);
  for (std::size_t b = 1; b < kBidders; ++b)
    if (outcome.bids[b] > outcome.bids[outcome.winner]) outcome.winner = b;
  return outcome;
}

void report(const std::string& title, const AuctionOutcome& outcome) {
  std::cout << title << "\n";
  for (std::size_t b = 0; b < kBidders; ++b)
    std::cout << "  bidder " << b << " announced bid " << outcome.bids[b]
              << (b == outcome.winner ? "   <- wins" : "") << "\n";
  std::cout << "\n";
}

}  // namespace

int main() {
  const std::array<unsigned, kBidders> valuations = {11, 6, 9, 2};
  std::cout << "sealed-bid auction, valuations: 11, 6, 9, 2 (bidder 3 is the cheater)\n\n";

  report("honest auction over gennaro:", run_auction("gennaro", valuations, false, 1000));

  report("cheating bidder 3 over seq-broadcast (copies bidder 0 bit by bit):",
         run_auction("seq-broadcast", valuations, true, 2000));

  report("same cheater against gennaro (cannot copy; refusing to commit "
         "announces 0):",
         run_auction("gennaro", valuations, true, 3000));

  std::cout << "Independence of the per-bit broadcasts is exactly what makes the\n"
               "auction sealed: see DESIGN.md (E4/E5) for the formal notions.\n";
  return 0;
}
