// A yes/no referendum over simultaneous broadcast: the electronic-voting
// motivation from the paper's introduction.
//
// Seven voters announce a yes (1) / no (0) vote; majority wins.  A lobbyist
// controls one voter and wants the measure to FAIL, so the ideal strategy
// is to watch the honest votes and vote "no" only when the race is close
// (or better: always equal the negation needed).  Two scenarios:
//
//   - naive-commit-reveal + selective abort: the corrupted voter commits to
//     "yes" and reveals only when honest voter 0 voted "yes" - correlating
//     its announced vote with an honest one, which can flip close races
//     relative to its committed intent;
//   - gennaro: the vote is locked at commit time and recoverable; the only
//     deviation left is abstaining (announced 0 = "no") *unconditionally*,
//     i.e. without seeing anything - which is an honest-world strategy, not
//     an attack.
//
// The example counts how often the corrupted coordinate correlates with
// honest voter 0's announced vote in each scenario.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "core/report.h"
#include "core/session.h"
#include "crypto/commitment.h"
#include "exec/runner.h"
#include "stats/rng.h"

namespace {

using namespace simulcast;
constexpr std::size_t kVoters = 7;
constexpr std::size_t kElections = 1500;

struct Tally {
  double match_rate = 0.0;   ///< Pr[corrupted announced == honest P0 announced]
  double yes_rate = 0.0;     ///< Pr[measure passes]
  exec::BatchReport report;  ///< engine accounting of the election batch
};

Tally run_elections(const std::string& protocol, const adversary::AdversaryFactory& factory,
                    std::uint64_t seed) {
  core::Session session(protocol, kVoters);
  stats::Rng rng(seed);
  // Votes and per-election seeds are drawn exactly as the serial loop drew
  // them (fork never advances rng), then the 1500 elections ride the exec
  // engine as one batch — set SIMULCAST_THREADS to shard them.
  std::vector<BitVec> votes(kElections, BitVec(kVoters));
  std::vector<std::uint64_t> seeds(kElections);
  for (std::size_t e = 0; e < kElections; ++e) {
    for (std::size_t v = 0; v < kVoters; ++v) votes[e].set(v, rng.bernoulli(0.5));
    seeds[e] = rng.fork("e", e)();
  }
  const core::SessionBatch batch = session.run_batch_seeded(votes, seeds, {6}, factory);

  std::size_t matches = 0;
  std::size_t passes = 0;
  for (const core::SessionResult& result : batch.results) {
    if (result.announced.get(6) == result.announced.get(0)) ++matches;
    if (static_cast<std::size_t>(result.announced.popcount()) * 2 > kVoters) ++passes;
  }
  return {static_cast<double>(matches) / kElections, static_cast<double>(passes) / kElections,
          batch.report};
}

}  // namespace

int main(int argc, char** argv) {
  exec::configure_threads(argc, argv);  // --threads=N / --json=PATH / --trace=PATH (strict)
  static const crypto::HashCommitmentScheme scheme;
  std::cout << std::fixed << std::setprecision(3) << "referendum with " << kVoters
            << " voters, voter 6 corrupted, " << kElections << " elections per row\n\n";

  const Tally naive = run_elections(
      "naive-commit-reveal", adversary::selective_abort_factory(0, scheme), 11);
  std::cout << "naive-commit-reveal + selective abort:\n"
            << "  corrupted vote matches honest voter 0: " << naive.match_rate
            << "  (1.000 = perfectly correlated)\n"
            << "  measure passes: " << naive.yes_rate << "\n\n";

  const Tally fair = run_elections("gennaro", adversary::silent_factory(), 12);
  std::cout << "gennaro + the strongest remaining deviation (unconditional abstain):\n"
            << "  corrupted vote matches honest voter 0: " << fair.match_rate
            << "  (0.5 = independent)\n"
            << "  measure passes: " << fair.yes_rate << "\n\n";

  std::cout << "Selective abort is why commit-then-reveal without recoverability is\n"
               "not a simultaneous broadcast; the VSS-based protocols fix the vote at\n"
               "commit time (tests/protocols/vss_protocols_test.cpp,\n"
               "RevealWithholdingCannotChangeAnnouncedValue).\n\n";

  const bool naive_correlated = naive.match_rate > 0.95;
  const bool fair_independent = std::abs(fair.match_rate - 0.5) < 0.06;

  obs::ExperimentRecord rec;
  rec.id = "example/election";
  rec.paper_claim = "selective abort correlates the corrupted vote; recoverable "
                    "commitments leave only input-independent abstention";
  rec.setup = "referendum, 7 voters, voter 6 corrupted, 1500 elections per scenario";
  rec.seed = 11;
  rec.perf.report = core::merge(naive.report, fair.report);
  rec.cells.push_back(
      {"naive-commit-reveal correlated",
       obs::check(naive_correlated,
                  "match rate " + core::fmt(naive.match_rate, 3) + " > 0.95")});
  rec.cells.push_back(
      {"gennaro independent",
       obs::check(fair_independent,
                  "|match rate " + core::fmt(fair.match_rate, 3) + " - 0.5| < 0.06")});
  rec.reproduced = naive_correlated && fair_independent;
  rec.detail = "naive match " + core::fmt(naive.match_rate, 3) + ", gennaro match " +
               core::fmt(fair.match_rate, 3);
  return core::finish_experiment(rec);
}
