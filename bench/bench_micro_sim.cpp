// Microbenchmarks of the simulator and protocol executions: wall-clock cost
// of one full execution per protocol and per n, plus tester throughput.
#include <benchmark/benchmark.h>

#include "adversary/adversaries.h"
#include "micro_report.h"
#include "core/registry.h"
#include "sim/network.h"
#include "testers/cr_tester.h"

namespace {

using namespace simulcast;

void run_protocol(benchmark::State& state, const std::string& name) {
  const auto proto = core::make_protocol(name);
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::ProtocolParams params;
  params.n = n;
  stats::Rng rng(n);
  BitVec inputs(n);
  for (std::size_t i = 0; i < n; ++i) inputs.set(i, rng.bit());
  std::uint64_t seed = 0;
  for (auto _ : state) {
    adversary::SilentAdversary adv;
    sim::ExecutionConfig config;
    config.seed = seed++;
    benchmark::DoNotOptimize(sim::run_execution(*proto, params, inputs, adv, config));
  }
}

void BM_ExecSeqBroadcast(benchmark::State& state) { run_protocol(state, "seq-broadcast"); }
void BM_ExecCgma(benchmark::State& state) { run_protocol(state, "cgma"); }
void BM_ExecChorRabin(benchmark::State& state) { run_protocol(state, "chor-rabin"); }
void BM_ExecGennaro(benchmark::State& state) { run_protocol(state, "gennaro"); }
void BM_ExecFlawedPiG(benchmark::State& state) { run_protocol(state, "flawed-pi-g"); }

BENCHMARK(BM_ExecSeqBroadcast)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_ExecCgma)->Arg(4)->Arg(16);
BENCHMARK(BM_ExecChorRabin)->Arg(4)->Arg(16);
BENCHMARK(BM_ExecGennaro)->Arg(4)->Arg(16);
BENCHMARK(BM_ExecFlawedPiG)->Arg(4)->Arg(16)->Arg(64);

void BM_CrTester(benchmark::State& state) {
  const auto proto = core::make_protocol("gennaro");
  testers::RunSpec spec;
  spec.protocol = proto.get();
  spec.params.n = 4;
  spec.adversary = adversary::silent_factory();
  const auto uniform = dist::make_uniform(4);
  const auto samples =
      testers::collect_samples(spec, *uniform, static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) benchmark::DoNotOptimize(testers::test_cr(samples, spec.corrupted));
}
BENCHMARK(BM_CrTester)->Arg(500)->Arg(2000);

void BM_SampleCollection(benchmark::State& state) {
  const auto proto = core::make_protocol("gennaro");
  testers::RunSpec spec;
  spec.protocol = proto.get();
  spec.params.n = 4;
  spec.adversary = adversary::silent_factory();
  const auto uniform = dist::make_uniform(4);
  std::uint64_t seed = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(testers::collect_samples(spec, *uniform, 10, seed++));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_SampleCollection);

}  // namespace

int main(int argc, char** argv) {
  simulcast::obs::ExperimentRecord rec;
  rec.id = "micro/sim";
  rec.paper_claim =
      "(methodology) wall-clock cost of one execution per protocol and per n, "
      "plus tester throughput";
  rec.setup = "google-benchmark over sim::run_execution and the CR tester";
  return simulcast::bench::run_micro(argc, argv, std::move(rec));
}
