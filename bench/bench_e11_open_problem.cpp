// E11 - Section 7's open problem, probed empirically.
//
// The paper closes with: "An interesting open problem is to find a constant
// round protocol (i.e., as efficient as the one of [12]) for simultaneous
// broadcast that achieves the stronger notion of CR-Independence [8] or
// even (and preferably) Sb-Independence [7]."
//
// Our Gennaro-style construction is a 4-round (constant) protocol, and in
// this harness it passes the CR tester AND the Sb tester against every
// adversary in the library, on a grid of achievable distributions.  That is
// NOT a resolution of the open problem - a Monte-Carlo tester over a finite
// adversary/distinguisher library proves nothing asymptotically - but it is
// the empirical statement that the candidate construction shows no
// separation at simulation scale, and it pins down exactly what a proof
// would need to rule out.  The harness prints the adversary-by-adversary
// evidence.
#include <iostream>

#include "core/registry.h"
#include "core/report.h"
#include "testers/cr_tester.h"
#include "testers/g_tester.h"
#include "testers/sb_tester.h"
#include "exec/runner.h"

namespace {
using namespace simulcast;
constexpr std::uint64_t kSeed = 0xE11;
}  // namespace

int main(int argc, char** argv) {
  exec::configure_threads(argc, argv);  // --threads=N / --json=PATH / --trace=PATH (strict)
  obs::ExperimentRecord rec;
  rec.id = "E11/open-problem";
  rec.paper_claim =
      "Section 7 (open): is there a constant-round protocol achieving CR or even Sb "
      "independence?  Candidate: the 4-round VSS commit-reveal (gennaro)";
  rec.setup =
      "gennaro, n = 4..5, adversary library sweep x {uniform, biased product}, "
      "CR/G/Sb testers; evidence only - not a proof";
  rec.seed = kSeed;
  core::print_banner(rec);
  exec::BatchReport sweep_report;

  const auto proto = core::make_protocol("gennaro");
  static const crypto::HashCommitmentScheme scheme;

  struct Row {
    std::string adversary;
    std::size_t n;
    std::vector<sim::PartyId> corrupted;
    adversary::AdversaryFactory factory;
  };
  sim::ProtocolParams p4;
  p4.n = 4;
  sim::ProtocolParams p5;
  p5.n = 5;

  std::vector<Row> rows;
  rows.push_back({"passive x1", 4, {2}, adversary::passive_factory(*proto, p4)});
  rows.push_back({"passive x2", 5, {1, 3}, adversary::passive_factory(*proto, p5)});
  rows.push_back({"silent x1", 4, {2}, adversary::silent_factory()});
  rows.push_back({"silent x2 (max t)", 5, {0, 4}, adversary::silent_factory()});

  std::vector<std::shared_ptr<dist::InputEnsemble>> ensembles;
  ensembles.push_back(dist::make_uniform(4));
  ensembles.push_back(
      std::make_shared<dist::ProductEnsemble>(std::vector<double>{0.3, 0.7, 0.5, 0.8}));

  core::Table table({"adversary", "ensemble", "CR", "G", "Sb", "max gaps (CR/G/Sb)"});
  bool all_pass = true;
  for (const Row& row : rows) {
    for (const auto& base_ens : ensembles) {
      // Match the ensemble width to the row's n by padding with fair bits.
      std::shared_ptr<dist::InputEnsemble> ens = base_ens;
      if (ens->bits() != row.n) {
        std::vector<double> probs(row.n, 0.5);
        ens = std::make_shared<dist::ProductEnsemble>(probs);
      }
      testers::RunSpec spec;
      spec.protocol = proto.get();
      spec.params.n = row.n;
      spec.corrupted = row.corrupted;
      spec.adversary = row.factory;

      const auto batch = testers::collect_batch(spec, *ens, 2500, kSeed);
      sweep_report = core::merge(sweep_report, batch.report);
      const auto cr = exec::timed_phase(
          sweep_report.phases.evaluation,
          [&] { return testers::test_cr(batch.samples, spec.corrupted); });
      const auto g = exec::timed_phase(
          sweep_report.phases.evaluation,
          [&] { return testers::test_g(batch.samples, spec.corrupted); });
      testers::SbOptions sb_options;
      sb_options.samples = 800;
      const auto sb = testers::test_sb(spec, *ens, sb_options, kSeed + 1);

      const std::string cell_label = row.adversary + " x " + ens->name();
      rec.cells.push_back({cell_label + " CR", obs::record(cr)});
      rec.cells.push_back({cell_label + " G", obs::record(g)});
      rec.cells.push_back({cell_label + " Sb", obs::record(sb)});
      table.add_row({row.adversary, ens->name(), core::verdict_str(cr.independent),
                     core::verdict_str(g.independent), core::verdict_str(sb.secure),
                     core::fmt(cr.max_gap) + " / " + core::fmt(g.max_excess) + " / " +
                         core::fmt(sb.max_distinguisher_gap)});
      all_pass = all_pass && cr.independent && g.independent && sb.secure;
    }
  }
  std::cout << table.render() << "\n";
  std::cout << "rounds(gennaro, n) = " << proto->rounds(64)
            << " for every n - constant, matching [12]'s efficiency target.\n";

  rec.perf.report = sweep_report;
  rec.reproduced = all_pass;
  rec.detail = all_pass ? "no CR/G/Sb violation found for the constant-round candidate at "
                          "simulation scale (evidence, not proof)"
                        : "the candidate shows a violation - see table";
  return core::finish_experiment(rec);
}
