// Microbenchmarks of the crypto substrate (google-benchmark).
//
// Not a paper experiment - these quantify the building blocks so the
// protocol-level costs in E9 can be decomposed: hashing, commitments,
// Shamir/VSS dealing and verification, sigma proofs, and hash-based
// signatures.
#include <benchmark/benchmark.h>

#include "micro_report.h"

#include "crypto/commitment.h"
#include "crypto/lamport.h"
#include "crypto/sha256.h"
#include "crypto/shamir.h"
#include "crypto/sigma.h"
#include "crypto/vss.h"

namespace {

using namespace simulcast;
using namespace simulcast::crypto;

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacDrbgGenerate(benchmark::State& state) {
  HmacDrbg drbg(1, "bench");
  for (auto _ : state) benchmark::DoNotOptimize(drbg.generate(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_HmacDrbgGenerate)->Arg(32)->Arg(256);

void BM_CommitmentCommit(benchmark::State& state) {
  const auto scheme = make_commitment_scheme(state.range(0) == 0 ? "hash" : "pedersen");
  HmacDrbg drbg(2, "bench");
  const Opening op = scheme->make_opening({0x01}, drbg);
  for (auto _ : state) benchmark::DoNotOptimize(scheme->commit("party:0", op));
}
BENCHMARK(BM_CommitmentCommit)->Arg(0)->Arg(1);

void BM_ShamirShare(benchmark::State& state) {
  HmacDrbg drbg(3, "bench");
  const auto n = static_cast<std::size_t>(state.range(0));
  const Fp61 secret(123456789);
  for (auto _ : state)
    benchmark::DoNotOptimize(shamir_share(secret, (n - 1) / 2, n, drbg));
}
BENCHMARK(BM_ShamirShare)->Arg(4)->Arg(16)->Arg(64);

void BM_ShamirReconstruct(benchmark::State& state) {
  HmacDrbg drbg(4, "bench");
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shares = shamir_share(Fp61(42), (n - 1) / 2, n, drbg);
  const std::vector<Share<Fp61>> subset(shares.begin(),
                                        shares.begin() + static_cast<std::ptrdiff_t>((n - 1) / 2 + 1));
  for (auto _ : state) benchmark::DoNotOptimize(shamir_reconstruct(subset));
}
BENCHMARK(BM_ShamirReconstruct)->Arg(4)->Arg(16)->Arg(64);

void BM_PedersenVssDeal(benchmark::State& state) {
  HmacDrbg drbg(5, "bench");
  PedersenVss vss;
  const auto n = static_cast<std::size_t>(state.range(0));
  const Zq secret(1, vss.group().q());
  for (auto _ : state) benchmark::DoNotOptimize(vss.deal(secret, (n - 1) / 2, n, drbg));
}
BENCHMARK(BM_PedersenVssDeal)->Arg(4)->Arg(16)->Arg(64);

void BM_PedersenVssVerifyShare(benchmark::State& state) {
  HmacDrbg drbg(6, "bench");
  PedersenVss vss;
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto deal = vss.deal(Zq(1, vss.group().q()), (n - 1) / 2, n, drbg);
  for (auto _ : state)
    benchmark::DoNotOptimize(vss.verify_share(deal.commitments, deal.shares[0]));
}
BENCHMARK(BM_PedersenVssVerifyShare)->Arg(4)->Arg(16)->Arg(64);

void BM_SigmaProveVerify(benchmark::State& state) {
  const SchnorrGroup& group = SchnorrGroup::standard();
  HmacDrbg drbg(7, "bench");
  const Zq m{1, group.q()};
  const Zq r = group.sample_exponent(drbg);
  const std::uint64_t statement = group.mul(group.exp_g(m), group.exp_h(r));
  for (auto _ : state) {
    const SigmaCommitment commit = sigma_commit(group, drbg);
    const Zq challenge = group.sample_exponent(drbg);
    const SigmaResponse resp = sigma_respond(commit, challenge, m, r);
    benchmark::DoNotOptimize(sigma_verify(group, statement, challenge, resp));
  }
}
BENCHMARK(BM_SigmaProveVerify);

void BM_LamportSign(benchmark::State& state) {
  const LamportKeyPair kp = lamport_keygen(Bytes(32, 1));
  const Digest msg = sha256("bench");
  for (auto _ : state) benchmark::DoNotOptimize(lamport_sign(kp, msg));
}
BENCHMARK(BM_LamportSign);

void BM_LamportVerify(benchmark::State& state) {
  const LamportKeyPair kp = lamport_keygen(Bytes(32, 2));
  const Digest msg = sha256("bench");
  const LamportSignature sig = lamport_sign(kp, msg);
  for (auto _ : state) benchmark::DoNotOptimize(lamport_verify(kp.pk, msg, sig));
}
BENCHMARK(BM_LamportVerify);

void BM_MerkleSignerSetup(benchmark::State& state) {
  for (auto _ : state) {
    MerkleSigner signer(Bytes(32, 3), static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(signer.public_root());
  }
}
BENCHMARK(BM_MerkleSignerSetup)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  simulcast::obs::ExperimentRecord rec;
  rec.id = "micro/crypto";
  rec.paper_claim =
      "(methodology) building-block costs decomposing the protocol-level "
      "measurements of E9";
  rec.setup =
      "google-benchmark over hashing, commitments, Shamir/VSS, sigma proofs "
      "and hash-based signatures";
  return simulcast::bench::run_micro(argc, argv, std::move(rec));
}
