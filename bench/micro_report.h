// Shared main for the google-benchmark micro harnesses.
//
// Replaces BENCHMARK_MAIN() so the micro binaries speak the same observation
// protocol as the E-binaries: every measured run is captured into an
// obs::ExperimentRecord cell and the record flows through the common
// core::finish_experiment epilogue (verdict line + optional BENCH_*.json).
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/report.h"
#include "exec/runner.h"

namespace simulcast::bench {

/// Console reporter that also records each measurement as a record cell.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<obs::ExperimentCell> cells;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      const std::string detail =
          run.error_occurred
              ? "benchmark error: " + run.error_message
              : obs::fmt(run.GetAdjustedRealTime(), 1) + " " +
                    benchmark::GetTimeUnitString(run.time_unit) + "/iter over " +
                    std::to_string(run.iterations) + " iterations";
      cells.push_back({run.benchmark_name(), obs::check(!run.error_occurred, detail)});
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

/// The micro-harness main: strips the simulcast CLI knobs (--threads=,
/// --json=, --trace=; already consumed by configure_threads) out of argv
/// before google-benchmark sees them, runs the registered benchmarks, and
/// emits the record.  Exits 0 iff at least one benchmark ran without error.
inline int run_micro(int argc, char** argv, obs::ExperimentRecord rec) {
  // Strict parse of the shared knobs; google-benchmark's own flags pass
  // through to benchmark::Initialize below.
  exec::configure_threads(argc, argv, {"--benchmark_"});
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (i > 0 && (arg.rfind("--threads=", 0) == 0 || arg.rfind("--json=", 0) == 0 ||
                  arg.rfind("--trace=", 0) == 0))
      continue;
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;

  core::print_banner(rec);
  RecordingReporter reporter;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  bool all_ok = ran > 0;
  for (const obs::ExperimentCell& cell : reporter.cells)
    all_ok = all_ok && cell.verdict.pass;
  rec.cells = std::move(reporter.cells);
  rec.reproduced = all_ok;
  rec.detail = std::to_string(ran) + " benchmarks measured, " +
               std::to_string(rec.cells.size()) + " runs recorded";
  return core::finish_experiment(rec);
}

}  // namespace simulcast::bench
