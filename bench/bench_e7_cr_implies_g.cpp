// E7 - Lemma 6.2: (D(G), CR)-independence implies (D(G), G)-independence,
// with the proof's explicit D' construction (Appendix A.2).
//
//   (a) implication sweep: on a grid of locally independent distributions,
//       every (protocol, adversary) cell that passes the CR tester also
//       passes the G tester - no counterexample;
//   (b) the contrapositive construction: the proof takes a G** violation
//       (here: seq-broadcast + copy, whose corrupted coordinate flips with
//       the victim's fixed input) and builds the pinned distribution
//       D' = PinnedCoordinate(ell = victim, p, rest) on which the CR
//       quantity equals p(1-p) * |gap|.  We run exactly that D' and verify
//       the measured CR gap matches p(1-p) times the measured G** gap.
#include <iostream>

#include "core/registry.h"
#include "core/report.h"
#include "testers/cr_tester.h"
#include "testers/g_tester.h"
#include "testers/gstarstar_tester.h"
#include "exec/runner.h"

namespace {
using namespace simulcast;
constexpr std::uint64_t kSeed = 0xE7;
}  // namespace

int main(int argc, char** argv) {
  exec::configure_threads(argc, argv);  // --threads=N / --json=PATH / --trace=PATH (strict)
  obs::ExperimentRecord rec;
  rec.id = "E7/cr-implies-g";
  rec.paper_claim =
      "Lemma 6.2: a protocol CR-independent on all of D(G) is G-independent on all of "
      "D(G); proof constructs D' with CR gap = p(1-p) * G** gap";
  rec.setup =
      "grid of locally independent distributions x 4 protocols (one corruption, "
      "passive); then the A.2 pinned distribution on seq-broadcast + copy";
  rec.seed = kSeed;
  core::print_banner(rec);
  exec::BatchReport sweep_report;

  std::vector<std::shared_ptr<dist::InputEnsemble>> grid;
  grid.push_back(dist::make_uniform(4));
  grid.push_back(std::make_shared<dist::ProductEnsemble>(std::vector<double>{0.3, 0.6, 0.5, 0.8}));
  grid.push_back(std::make_shared<dist::NoisyCopyEnsemble>(4, 0.5));  // = uniform

  core::Table table({"protocol", "CR on grid", "G on grid", "consistent with Lemma 6.2?"});
  bool implication_holds = true;
  for (const char* name : {"cgma", "chor-rabin", "gennaro", "flawed-pi-g"}) {
    const auto proto = core::make_protocol(name);
    testers::RunSpec spec;
    spec.protocol = proto.get();
    spec.params.n = 4;
    spec.corrupted = {3};
    spec.adversary = adversary::passive_factory(*proto, spec.params);

    bool cr_all = true;
    bool g_all = true;
    for (std::size_t gi = 0; gi < grid.size(); ++gi) {
      const auto batch = testers::collect_batch(spec, *grid[gi], 2500, kSeed + gi);
      sweep_report = core::merge(sweep_report, batch.report);
      exec::timed_phase(sweep_report.phases.evaluation, [&] {
        cr_all = cr_all && testers::test_cr(batch.samples, spec.corrupted).independent;
        g_all = g_all && testers::test_g(batch.samples, spec.corrupted).independent;
        return 0;
      });
    }
    const bool consistent = !(cr_all && !g_all);
    implication_holds = implication_holds && consistent;
    rec.cells.push_back(
        {name, obs::check(consistent, std::string("CR on grid ") + (cr_all ? "PASS" : "FAIL") +
                                          ", G on grid " + (g_all ? "PASS" : "FAIL") +
                                          " - no (CR pass, G fail) cell")});
    table.add_row(
        {name, cr_all ? "PASS" : "FAIL", g_all ? "PASS" : "FAIL", consistent ? "yes" : "NO"});
  }
  std::cout << table.render() << "\n";

  // (b) The A.2 construction.  seq-broadcast + copy: G** gap at corrupted
  // P3 between victim inputs r (bit 0) and s (bit 1) is ~1.  Build
  // D' pinned at ell = 0 with p = 0.3; the CR quantity on D' must be
  // ~ p(1-p) * 1 = 0.21.
  const auto seq = core::make_protocol("seq-broadcast");
  testers::RunSpec spec;
  spec.protocol = seq.get();
  spec.params.n = 4;
  spec.corrupted = {3};
  spec.adversary = adversary::copy_last_factory(0);

  testers::GssOptions gss_options;
  gss_options.samples_per_input = 150;
  const testers::GssVerdict gss = testers::test_gstarstar(spec, gss_options, kSeed + 50);
  std::cout << "G** on seq-broadcast + copy: " << core::describe(gss) << "\n";

  const double p_ell = 0.3;
  const dist::PinnedCoordinateEnsemble d_prime(4, 0, p_ell, BitVec::from_string("110"));
  const auto batch = testers::collect_batch(spec, d_prime, 4000, kSeed + 51);
  sweep_report = core::merge(sweep_report, batch.report);
  const testers::CrVerdict cr = exec::timed_phase(
      sweep_report.phases.evaluation,
      [&] { return testers::test_cr(batch.samples, spec.corrupted); });
  const double predicted = p_ell * (1.0 - p_ell) * gss.max_gap;
  std::cout << "CR on D' (pinned, p = " << p_ell << "): " << core::describe(cr) << "\n"
            << "predicted CR gap = p(1-p) * G** gap = " << core::fmt(predicted) << "\n";

  const bool construction_matches =
      !gss.independent && !cr.independent && std::abs(cr.max_gap - predicted) < 0.05;
  rec.cells.push_back({"A.2 G** on seq-broadcast + copy", obs::record(gss)});
  rec.cells.push_back({"A.2 CR on D'", obs::record(cr)});
  rec.cells.push_back({"A.2 gap prediction",
                       obs::check(construction_matches,
                                  "measured CR gap " + core::fmt(cr.max_gap) +
                                      " vs predicted p(1-p) * G** gap " + core::fmt(predicted))});

  rec.perf.report = sweep_report;
  rec.reproduced = implication_holds && construction_matches;
  rec.detail = std::string("no (CR pass, G fail) cell observed: ") +
               (implication_holds ? "yes" : "NO") + "; A.2 construction: measured CR gap " +
               core::fmt(cr.max_gap) + " vs predicted " + core::fmt(predicted);
  return core::finish_experiment(rec);
}
