// E8 - Appendix B: G* <=> G** (Prop. B.3) and G** => G on locally
// independent distributions (Prop. B.4).
//
// For a grid of (protocol, adversary) pairs we compute three verdicts:
//   G*  : max over fixed inputs x of | Pr[W_i = 1 | input x] -
//         Pr[W_i = 1 | input x_B ⊔ 0_B̄] |  (Definition B.1, statistical
//         closeness of E and E0 at the Bernoulli statistic);
//   G** : max over (w, r, s) fixed-input pairs (Definition B.2);
//   G   : the distributional tester on the uniform ensemble.
// Prop. B.3 predicts the G* and G** verdicts agree on every row; Prop. B.4
// predicts no row shows (G** pass, G fail).
#include <iostream>

#include "core/registry.h"
#include "core/report.h"
#include "stats/confidence.h"
#include "testers/g_tester.h"
#include "testers/gstarstar_tester.h"
#include "exec/runner.h"

namespace {
using namespace simulcast;
constexpr std::uint64_t kSeed = 0xE8;
constexpr std::size_t kPerInput = 200;

using testers::RunSpec;

/// The G* statistic: sweep all fixed inputs, compare each against the
/// zeroed-honest-input hybrid.
double gstar_gap(const RunSpec& spec, std::uint64_t seed, exec::BatchReport& sweep) {
  const std::size_t n = spec.params.n;
  const auto honest = testers::honest_indices(n, spec.corrupted);
  stats::Rng master(seed);
  double max_gap = 0.0;
  for (std::uint64_t x_bits = 0; x_bits < (std::uint64_t{1} << n); ++x_bits) {
    const BitVec x(n, x_bits);
    BitVec zeroed = x;
    for (std::size_t j : honest) zeroed.set(j, false);
    const auto real = testers::collect_batch_fixed(spec, x, kPerInput, master.fork("r", x_bits)());
    const auto hybrid =
        testers::collect_batch_fixed(spec, zeroed, kPerInput, master.fork("h", x_bits)());
    sweep = core::merge(core::merge(sweep, real.report), hybrid.report);
    const exec::ScopedPhase timer(sweep.phases.evaluation);
    for (std::size_t c : spec.corrupted) {
      double p_real = 0.0;
      double p_hybrid = 0.0;
      for (const auto& s : real.samples) p_real += s.announced.get(c) ? 1.0 : 0.0;
      for (const auto& s : hybrid.samples) p_hybrid += s.announced.get(c) ? 1.0 : 0.0;
      max_gap = std::max(max_gap,
                         std::abs(p_real - p_hybrid) / static_cast<double>(kPerInput));
    }
  }
  return max_gap;
}

}  // namespace

int main(int argc, char** argv) {
  exec::configure_threads(argc, argv);  // --threads=N / --json=PATH / --trace=PATH (strict)
  obs::ExperimentRecord rec;
  rec.id = "E8/gstar";
  rec.paper_claim =
      "Prop. B.3: G* and G** are equivalent; Prop. B.4: G** implies G on Psi_L,n";
  rec.setup =
      "grid of (protocol, adversary) pairs, n = 4..5, fixed-input sweeps with 200 "
      "executions per input, G on uniform with 4000 executions";
  rec.seed = kSeed;
  core::print_banner(rec);
  exec::BatchReport sweep_report;

  struct Cell {
    std::string protocol;
    std::string adversary;
    RunSpec spec;
  };
  std::vector<Cell> cells;
  std::vector<std::unique_ptr<sim::ParallelBroadcastProtocol>> protos;

  const auto add = [&](const std::string& pname, const std::string& aname, std::size_t n,
                       std::vector<sim::PartyId> corrupted,
                       adversary::AdversaryFactory factory) {
    protos.push_back(core::make_protocol(pname));
    Cell cell;
    cell.protocol = pname;
    cell.adversary = aname;
    cell.spec.protocol = protos.back().get();
    cell.spec.params.n = n;
    cell.spec.corrupted = std::move(corrupted);
    cell.spec.adversary = std::move(factory);
    cells.push_back(std::move(cell));
  };

  {
    auto gennaro = core::make_protocol("gennaro");
    sim::ProtocolParams p4;
    p4.n = 4;
    add("gennaro", "passive", 4, {2}, adversary::passive_factory(*gennaro, p4));
    protos.push_back(std::move(gennaro));  // keep alive for the factory
  }
  add("flawed-pi-g", "parity A*", 5, {1, 3}, adversary::parity_factory());
  add("seq-broadcast", "copy", 4, {3}, adversary::copy_last_factory(0));
  add("seq-broadcast", "silent", 4, {3}, adversary::silent_factory());

  // G* compares two kPerInput-sample Bernoulli estimates per (input,
  // corrupted coordinate); use the same union-bounded Hoeffding radius the
  // G** tester uses (plus the standard 0.02 margin).
  const double kThreshold =
      stats::hoeffding_diff_radius(kPerInput, kPerInput, 0.01 / (64.0 * 2.0)) + 0.02;

  core::Table table({"protocol", "adversary", "G* gap", "G* verdict", "G** gap", "G** verdict",
                     "G verdict", "B.3 agree?", "B.4 ok?"});
  bool b3_all = true;
  bool b4_all = true;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& cell = cells[ci];
    const double gs = gstar_gap(cell.spec, kSeed + ci, sweep_report);
    const bool gstar_pass = gs <= kThreshold;

    testers::GssOptions gss_options;
    gss_options.samples_per_input = kPerInput;
    const testers::GssVerdict gss = testers::test_gstarstar(cell.spec, gss_options, kSeed + 40 + ci);

    const auto uniform = dist::make_uniform(cell.spec.params.n);
    const auto batch = testers::collect_batch(cell.spec, *uniform, 4000, kSeed + 80 + ci);
    sweep_report = core::merge(sweep_report, batch.report);
    const testers::GVerdict g = exec::timed_phase(
        sweep_report.phases.evaluation,
        [&] { return testers::test_g(batch.samples, cell.spec.corrupted); });

    const bool b3 = gstar_pass == gss.independent;
    const bool b4 = !(gss.independent && !g.independent);
    b3_all = b3_all && b3;
    b4_all = b4_all && b4;
    const std::string row_label = cell.protocol + " x " + cell.adversary;
    rec.cells.push_back({row_label + " G**", obs::record(gss)});
    rec.cells.push_back({row_label + " G", obs::record(g)});
    rec.cells.push_back(
        {row_label + " B.3/B.4",
         obs::check(b3 && b4, std::string("G* gap ") + core::fmt(gs) + " (" +
                                  (gstar_pass ? "PASS" : "FAIL") + "), B.3 agree " +
                                  (b3 ? "yes" : "NO") + ", B.4 ok " + (b4 ? "yes" : "NO"))});
    table.add_row({cell.protocol, cell.adversary, core::fmt(gs),
                   gstar_pass ? "PASS" : "FAIL", core::fmt(gss.max_gap),
                   gss.independent ? "PASS" : "FAIL", g.independent ? "PASS" : "FAIL",
                   b3 ? "yes" : "NO", b4 ? "yes" : "NO"});
  }
  std::cout << table.render() << "\n";

  rec.perf.report = sweep_report;
  rec.reproduced = b3_all && b4_all;
  rec.detail = std::string("G*/G** verdicts agree on every row: ") + (b3_all ? "yes" : "NO") +
               "; no (G** pass, G fail) row: " + (b4_all ? "yes" : "NO");
  return core::finish_experiment(rec);
}
