// E4 - Lemma 6.4 (with Claims 6.5/6.6): the headline separation.
//
// There is a single protocol Π_G that achieves (D(G), G)-independence yet
// fails CR-independence for EVERY non-trivial distribution, including the
// uniform one.  We run the paper's construction (Π_G over Θ) under the
// adversary A* (two corrupted parties raise the auxiliary bit) and measure:
//   (a) Claim 6.6: the XOR of all announced bits is 0 in every execution;
//   (b) G tester: independent, for uniform and two other locally
//       independent ensembles;
//   (c) G** tester (Appendix B): independent over fixed inputs;
//   (d) CR tester: VIOLATED with the parity predicate, gap ~ p(1-p) = 1/4
//       on uniform, and proportionally for biased products;
//   (e) the honest-execution control: without A*, Π_G passes everything.
// A second table repeats (b)+(d) with the Θ backend swapped from the ideal
// functionality to the BGW-style MPC (theta-mpc), the DESIGN.md ablation.
#include <iostream>

#include "core/registry.h"
#include "core/report.h"
#include "protocols/theta_mpc.h"
#include "testers/cr_tester.h"
#include "testers/g_tester.h"
#include "testers/gstarstar_tester.h"
#include "exec/runner.h"

namespace {
using namespace simulcast;
constexpr std::uint64_t kSeed = 0xE4;
constexpr std::size_t kSamples = 4000;

struct Row {
  std::string label;
  bool parity_always_zero = true;
  testers::CrVerdict cr;
  testers::GVerdict g;
};

Row evaluate(const sim::ParallelBroadcastProtocol& proto, const dist::InputEnsemble& ens,
             std::uint64_t seed, exec::BatchReport& sweep) {
  testers::RunSpec spec;
  spec.protocol = &proto;
  spec.params.n = ens.bits();
  spec.corrupted = {1, 3};
  spec.adversary = adversary::parity_factory();
  const auto batch = testers::collect_batch(spec, ens, kSamples, seed);
  sweep = core::merge(sweep, batch.report);
  Row row;
  row.label = ens.name();
  for (const auto& s : batch.samples)
    if (s.announced.parity()) row.parity_always_zero = false;
  row.cr = exec::timed_phase(sweep.phases.evaluation,
                             [&] { return testers::test_cr(batch.samples, spec.corrupted); });
  row.g = exec::timed_phase(sweep.phases.evaluation,
                            [&] { return testers::test_g(batch.samples, spec.corrupted); });
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  exec::configure_threads(argc, argv);  // --threads=N / --json=PATH / --trace=PATH (strict)
  obs::ExperimentRecord rec;
  rec.id = "E4/separation-g-cr";
  rec.paper_claim =
      "Lemma 6.4: Pi_G is (D(G), G)-independent but not CR-independent for any "
      "non-trivial distribution (incl. uniform); Claim 6.6: A* forces XOR(W) = 0";
  rec.setup =
      "flawed-pi-g, n = 5, adversary A* corrupting {1, 3}, 4000 executions per "
      "ensemble; ensembles: uniform, product(.7), near-uniform noisy-copy";
  rec.seed = kSeed;
  core::print_banner(rec);
  exec::BatchReport sweep_report;

  const auto proto = core::make_protocol("flawed-pi-g");

  std::vector<std::shared_ptr<dist::InputEnsemble>> ensembles;
  ensembles.push_back(dist::make_uniform(5));
  ensembles.push_back(
      std::make_shared<dist::ProductEnsemble>(std::vector<double>{0.7, 0.7, 0.7, 0.7, 0.7}));
  ensembles.push_back(std::make_shared<dist::NoisyCopyEnsemble>(5, 0.48));

  core::Table table({"ensemble", "XOR(W)=0 always", "G verdict", "G max excess", "CR verdict",
                     "CR max gap", "CR worst predicate"});
  bool ok = true;
  for (const auto& ens : ensembles) {
    const Row row = evaluate(*proto, *ens, kSeed, sweep_report);
    rec.cells.push_back(
        {row.label + " parity", obs::check(row.parity_always_zero, "XOR(W) = 0 always")});
    rec.cells.push_back({row.label + " G", obs::record(row.g)});
    rec.cells.push_back({row.label + " CR", obs::record(row.cr)});
    table.add_row({row.label, row.parity_always_zero ? "yes" : "NO",
                   row.g.independent ? "independent" : "VIOLATED", core::fmt(row.g.max_excess),
                   row.cr.independent ? "independent" : "VIOLATED", core::fmt(row.cr.max_gap),
                   row.cr.worst.predicate});
    ok = ok && row.parity_always_zero && row.g.independent && !row.cr.independent;
  }
  std::cout << table.render() << "\n";

  // Quantitative check on uniform: the CR gap at the parity predicate is
  // p(1-p) = 1/4.
  const Row uniform_row = evaluate(*proto, *ensembles[0], kSeed + 1, sweep_report);
  const bool gap_quarter = std::abs(uniform_row.cr.max_gap - 0.25) < 0.05;
  std::cout << "uniform CR gap = " << core::fmt(uniform_row.cr.max_gap)
            << " (paper: p(1-p) = 0.25 for the parity predicate)\n";
  rec.cells.push_back(
      {"uniform CR gap ~ 1/4",
       obs::check(gap_quarter, "measured gap " + core::fmt(uniform_row.cr.max_gap) +
                                   " vs paper p(1-p) = 0.25")});

  // Fixed-input side (Definition B.2).
  testers::RunSpec gss_spec;
  gss_spec.protocol = proto.get();
  gss_spec.params.n = 5;
  gss_spec.corrupted = {1, 3};
  gss_spec.adversary = adversary::parity_factory();
  testers::GssOptions gss_options;
  gss_options.samples_per_input = 250;
  const testers::GssVerdict gss = testers::test_gstarstar(gss_spec, gss_options, kSeed + 2);
  std::cout << core::describe(gss) << "\n";
  rec.cells.push_back({"uniform G**", obs::record(gss)});

  // Backend ablation: swap the ideal Θ for the real honest-majority MPC
  // (protocols/theta_mpc.h).  The verdicts must be invariant - evidence for
  // the DESIGN.md substitution argument.
  const auto mpc_proto = core::make_protocol("flawed-pi-g-mpc");
  const auto* mpc_typed = dynamic_cast<const protocols::ThetaMpcProtocol*>(mpc_proto.get());
  testers::RunSpec mpc_spec;
  mpc_spec.protocol = mpc_proto.get();
  mpc_spec.params.n = 5;
  mpc_spec.corrupted = {1, 3};
  mpc_spec.adversary = adversary::theta_mpc_parity_factory(*mpc_typed, mpc_spec.params);
  const auto mpc_batch =
      testers::collect_batch(mpc_spec, *ensembles[0], kSamples / 2, kSeed + 9);
  sweep_report = core::merge(sweep_report, mpc_batch.report);
  bool mpc_parity_zero = true;
  for (const auto& s : mpc_batch.samples)
    if (s.announced.parity()) mpc_parity_zero = false;
  const testers::GVerdict mpc_g = exec::timed_phase(
      sweep_report.phases.evaluation,
      [&] { return testers::test_g(mpc_batch.samples, mpc_spec.corrupted); });
  const testers::CrVerdict mpc_cr = exec::timed_phase(
      sweep_report.phases.evaluation,
      [&] { return testers::test_cr(mpc_batch.samples, mpc_spec.corrupted); });
  core::Table ablation({"theta backend", "XOR(W)=0 always", "G verdict", "CR verdict",
                        "CR max gap"});
  ablation.add_row({"ideal functionality", uniform_row.parity_always_zero ? "yes" : "NO",
                    uniform_row.g.independent ? "independent" : "VIOLATED",
                    uniform_row.cr.independent ? "independent" : "VIOLATED",
                    core::fmt(uniform_row.cr.max_gap)});
  ablation.add_row({"honest-majority MPC", mpc_parity_zero ? "yes" : "NO",
                    mpc_g.independent ? "independent" : "VIOLATED",
                    mpc_cr.independent ? "independent" : "VIOLATED",
                    core::fmt(mpc_cr.max_gap)});
  std::cout << "theta-backend ablation (uniform inputs):\n" << ablation.render() << "\n";
  const bool ablation_ok = mpc_parity_zero && mpc_g.independent && !mpc_cr.independent &&
                           std::abs(mpc_cr.max_gap - uniform_row.cr.max_gap) < 0.05;
  rec.cells.push_back({"theta-mpc ablation G", obs::record(mpc_g)});
  rec.cells.push_back({"theta-mpc ablation CR", obs::record(mpc_cr)});
  rec.cells.push_back(
      {"theta-mpc ablation invariant",
       obs::check(ablation_ok, "verdicts and CR gap match the ideal-functionality backend")});

  // Honest control: without A*, Pi_G is a clean simultaneous broadcast.
  testers::RunSpec honest_spec;
  honest_spec.protocol = proto.get();
  honest_spec.params.n = 5;
  honest_spec.adversary = adversary::silent_factory();
  const auto honest_batch =
      testers::collect_batch(honest_spec, *ensembles[0], kSamples, kSeed + 3);
  sweep_report = core::merge(sweep_report, honest_batch.report);
  const testers::CrVerdict honest_cr = exec::timed_phase(
      sweep_report.phases.evaluation, [&] { return testers::test_cr(honest_batch.samples, {}); });
  std::cout << "honest control: " << core::describe(honest_cr) << "\n";
  rec.cells.push_back({"honest control CR", obs::record(honest_cr)});

  rec.perf.report = sweep_report;
  rec.reproduced = ok && gap_quarter && gss.independent && honest_cr.independent && ablation_ok;
  rec.detail =
      "G passes / G** passes / CR fails with parity gap " + core::fmt(uniform_row.cr.max_gap) +
      " ~ 0.25 on uniform; XOR(W) = 0 in all " + std::to_string(3 * kSamples) +
      " attacked executions";
  return core::finish_experiment(rec);
}
