// E12 - model validation: the private point-to-point channels the paper's
// protocols presuppose are load-bearing.
//
// Section 3.1 lets the adversary "read all communication channels"; the
// VSS-based protocols are nevertheless secure because real deployments
// encrypt point-to-point links, which our simulator models with
// private_channels = true (see sim/adversary.h and DESIGN.md).  This
// experiment shows the flag is not cosmetic: against CGMA - whose dealing
// phase is *sequential* - a snooping adversary on public channels reads the
// victim's round-0 shares off the wire, reconstructs the victim's input
// bit, and deals a perfect copy with its own later-scheduled dealer.  The
// G** tester (fixed inputs, so the copy is a certainty event) flags it with
// gap ~ 1; with private channels the identical adversary is inert.
#include <iostream>
#include <sstream>

#include "core/registry.h"
#include "core/report.h"
#include "protocols/cgma.h"
#include "testers/gstarstar_tester.h"
#include "exec/runner.h"

namespace {
using namespace simulcast;
constexpr std::uint64_t kSeed = 0xE12;
}  // namespace

int main(int argc, char** argv) {
  exec::configure_threads(argc, argv);  // --threads=N / --json=PATH / --trace=PATH (strict)
  obs::ExperimentRecord rec;
  rec.id = "E12/channel-privacy";
  rec.paper_claim =
      "model validation (Section 3.1): VSS protocols need private p2p channels; "
      "with public channels a snooper copies a sequential dealer's bit";
  rec.setup =
      "cgma, n = 5, corrupted dealer 4 snoops on victim dealer 0; G** tester over "
      "fixed inputs, 150 executions per input, private vs public channels";
  rec.seed = kSeed;
  core::print_banner(rec);

  const auto proto = core::make_protocol("cgma");
  const auto schedule = protocols::CgmaProtocol::schedule(5);

  core::Table table({"channels", "G** verdict", "max gap", "worst (w, r, s)"});
  bool public_violated = false;
  bool private_safe = false;
  for (const bool private_channels : {true, false}) {
    testers::RunSpec spec;
    spec.protocol = proto.get();
    spec.params.n = 5;
    spec.corrupted = {4};
    spec.private_channels = private_channels;
    spec.adversary = adversary::share_snoop_factory(0, schedule);

    testers::GssOptions options;
    options.samples_per_input = 150;
    const testers::GssVerdict v = testers::test_gstarstar(spec, options, kSeed);
    rec.cells.push_back(
        {private_channels ? "private channels G**" : "public channels G**", obs::record(v)});
    std::ostringstream worst;
    worst << "w=" << v.worst.w.to_string() << " r=" << v.worst.r.to_string()
          << " s=" << v.worst.s.to_string();
    table.add_row({private_channels ? "private (model default)" : "PUBLIC",
                   v.independent ? "independent" : "VIOLATED", core::fmt(v.max_gap),
                   v.independent ? "-" : worst.str()});
    if (private_channels)
      private_safe = v.independent;
    else
      public_violated = !v.independent && v.max_gap > 0.9;
  }
  std::cout << table.render() << "\n";

  rec.reproduced = public_violated && private_safe;
  rec.detail =
      std::string("public channels: snooper copies the victim bit (gap ~ 1); private "
                  "channels: same adversary inert - the model's encrypted-link ") +
      "abstraction is necessary, not cosmetic";
  return core::finish_experiment(rec);
}
