// E1 - Claim 5.6: Singleton, Uniform ⊊ D(G) ⊊ D(CR) ⊊ D(Sb) = All.
//
// Classifies a catalogue of input-distribution ensembles into the paper's
// achievability classes and checks the strict containment chain with
// explicit witnesses:
//   - every singleton and the uniform distribution are in D(G) and D(CR);
//   - a near-singleton perturbation is in D(G) but is not Singleton/Uniform
//     (left strictness);
//   - the PRF-correlated ensemble is in D(CR) \ D(G) (middle strictness);
//   - the copy ensemble is outside D(CR) but, like everything, in
//     D(Sb) = All (right strictness).
#include <iostream>
#include <memory>

#include "core/report.h"
#include "dist/classes.h"
#include "exec/runner.h"

namespace {

using namespace simulcast;

struct Entry {
  std::string label;
  std::shared_ptr<dist::InputEnsemble> ensemble;
  double tau;
  bool expect_g;   // in D(G) (locally independent)
  bool expect_cr;  // in D(CR) (computationally independent)
};

}  // namespace

int main(int argc, char** argv) {
  exec::configure_threads(argc, argv);  // --threads=N / --json=PATH / --trace=PATH (strict)
  obs::ExperimentRecord rec;
  rec.id = "E1/classes";
  rec.paper_claim =
      "Claim 5.6: Singleton, Uniform strictly inside D(G) strictly inside "
      "D(CR) strictly inside D(Sb) = All";
  rec.setup =
      "classify 9 catalogue ensembles (n = 4..5) with exact pmfs; tau = 0.02 "
      "(0.10 for the PRF witness whose finite-family advantage floor is 1/16)";
  core::print_banner(rec);

  const double tau = 0.02;
  std::vector<Entry> entries;
  entries.push_back({"singleton 1010",
                     std::make_shared<dist::SingletonEnsemble>(BitVec::from_string("1010")), tau,
                     true, true});
  entries.push_back({"uniform", std::shared_ptr<dist::InputEnsemble>(dist::make_uniform(4)), tau,
                     true, true});
  entries.push_back({"product(.2,.5,.8,.5)",
                     std::make_shared<dist::ProductEnsemble>(std::vector<double>{0.2, 0.5, 0.8,
                                                                                 0.5}),
                     tau, true, true});
  // A 99/1 mixture of singletons differing in one bit is the product with
  // p = (1,1,1,.99): inside D(G) and D(CR) and tau-close to a singleton.
  entries.push_back({"near-singleton (99/1 mix)",
                     std::make_shared<dist::MixtureEnsemble>(
                         std::make_shared<dist::SingletonEnsemble>(BitVec::from_string("1111")),
                         std::make_shared<dist::SingletonEnsemble>(BitVec::from_string("1110")),
                         0.99),
                     tau, true, true});
  entries.push_back({"noisy-copy eps=.45", std::make_shared<dist::NoisyCopyEnsemble>(4, 0.45),
                     0.11, true, true});
  entries.push_back({"prf-correlated (n=5,key=0)",
                     std::make_shared<dist::PrfCorrelatedEnsemble>(5, 0), 0.10, false, true});
  entries.push_back({"copy (eps=0)", std::make_shared<dist::NoisyCopyEnsemble>(4, 0.0), tau,
                     false, false});
  entries.push_back({"even-parity", std::make_shared<dist::EvenParityEnsemble>(4), tau, false,
                     false});
  entries.push_back({"mix of two singletons (50/50)",
                     std::make_shared<dist::MixtureEnsemble>(
                         std::make_shared<dist::SingletonEnsemble>(BitVec::from_string("1111")),
                         std::make_shared<dist::SingletonEnsemble>(BitVec::from_string("0000")),
                         0.5),
                     tau, false, false});

  core::Table table({"ensemble", "singleton?", "product?", "in D(G)?", "in D(CR)?", "in D(Sb)?",
                     "worst witness"});
  bool all_expected = true;
  bool left_strict = false;
  bool middle_strict = false;
  bool right_strict = false;
  for (const Entry& e : entries) {
    const dist::ClassReport r = exec::timed_phase(
        rec.perf.report.phases.evaluation, [&] { return dist::classify(*e.ensemble, e.tau); });
    const bool as_expected = r.locally_independent.member == e.expect_g &&
                             r.computationally_independent.member == e.expect_cr;
    rec.cells.push_back(
        {e.label, obs::check(as_expected,
                             std::string("in D(G)=") +
                                 core::verdict_str(r.locally_independent.member) + " in D(CR)=" +
                                 core::verdict_str(r.computationally_independent.member) +
                                 " (expected " + (e.expect_g ? "G" : "-") +
                                 (e.expect_cr ? "/CR" : "/-") + ")")});
    table.add_row({e.label, core::verdict_str(r.singleton.member),
                   core::verdict_str(r.product.member),
                   core::verdict_str(r.locally_independent.member),
                   core::verdict_str(r.computationally_independent.member), "PASS (=All)",
                   r.locally_independent.member ? r.computationally_independent.witness
                                                : r.locally_independent.witness});
    if (r.locally_independent.member != e.expect_g ||
        r.computationally_independent.member != e.expect_cr)
      all_expected = false;
    if (r.locally_independent.member && !r.singleton.member && e.label != "uniform")
      left_strict = true;  // D(G) strictly contains Singleton and Uniform
    if (!r.locally_independent.member && r.computationally_independent.member)
      middle_strict = true;  // D(G) strictly inside D(CR)
    if (!r.computationally_independent.member) right_strict = true;  // D(CR) strict in All
  }
  std::cout << table.render() << "\n";

  // The containment direction (not just strictness): everything locally
  // independent in the catalogue is also computationally independent.
  bool containment = true;
  for (const Entry& e : entries) {
    const dist::ClassReport r = dist::classify(*e.ensemble, e.tau);
    if (r.locally_independent.member && !r.computationally_independent.member)
      containment = false;
  }

  rec.reproduced = all_expected && left_strict && middle_strict && right_strict && containment;
  rec.detail = std::string("containment D(G) subset of D(CR): ") +
               (containment ? "holds" : "broken") +
               "; strictness witnesses: prf-correlated in D(CR)\\D(G), copy outside D(CR)";
  return core::finish_experiment(rec);
}
