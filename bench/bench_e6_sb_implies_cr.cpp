// E6 - Lemma 6.1: (D(CR), Sb)-independence implies (D(CR), CR)-independence.
//
// Empirical form of the implication, plus the contrapositive construction
// from the proof (Appendix A.1):
//   (a) for every protocol/adversary pair that PASSES the Sb tester on a
//       grid of D(CR) distributions (products with varying biases), the CR
//       tester passes on the same grid - no counterexample to the
//       implication;
//   (b) the proof turns a CR attack into an Sb distinguisher: for
//       seq-broadcast + copy (which fails CR on uniform), the Sb tester's
//       distinguisher built from the same event also reports a gap -
//       exhibiting the A.1 transformation concretely.
#include <iostream>

#include "core/registry.h"
#include "core/report.h"
#include "testers/cr_tester.h"
#include "testers/sb_tester.h"
#include "exec/runner.h"

namespace {
using namespace simulcast;
constexpr std::uint64_t kSeed = 0xE6;
}  // namespace

int main(int argc, char** argv) {
  exec::configure_threads(argc, argv);  // --threads=N / --json=PATH / --trace=PATH (strict)
  obs::ExperimentRecord rec;
  rec.id = "E6/sb-implies-cr";
  rec.paper_claim =
      "Lemma 6.1: a protocol Sb-independent on all of D(CR) is CR-independent on all "
      "of D(CR)";
  rec.setup =
      "grid of 4 product distributions x 4 protocols x passive/silent adversaries, "
      "n = 4, one corruption; 1200 executions per cell";
  rec.seed = kSeed;
  core::print_banner(rec);
  exec::BatchReport sweep_report;

  std::vector<std::shared_ptr<dist::InputEnsemble>> grid;
  grid.push_back(dist::make_uniform(4));
  grid.push_back(std::make_shared<dist::ProductEnsemble>(std::vector<double>{0.2, 0.2, 0.2, 0.2}));
  grid.push_back(std::make_shared<dist::ProductEnsemble>(std::vector<double>{0.8, 0.5, 0.3, 0.6}));
  grid.push_back(std::make_shared<dist::ProductEnsemble>(std::vector<double>{0.5, 0.9, 0.5, 0.1}));

  const std::vector<std::string> protocols = {"cgma", "chor-rabin", "gennaro", "seq-broadcast"};

  core::Table table({"protocol", "adversary", "Sb on grid", "CR on grid", "consistent with "
                                                                          "Lemma 6.1?"});
  bool implication_holds = true;
  for (const std::string& name : protocols) {
    const auto proto = core::make_protocol(name);
    for (const std::string& adv_name : {std::string("passive"), std::string("copy")}) {
      if (adv_name == "copy" && name != "seq-broadcast") continue;  // copy targets seq only
      testers::RunSpec spec;
      spec.protocol = proto.get();
      spec.params.n = 4;
      spec.corrupted = {3};
      spec.adversary = adv_name == "passive"
                           ? adversary::passive_factory(*proto, spec.params)
                           : adversary::copy_last_factory(0);

      bool sb_all = true;
      bool cr_all = true;
      for (std::size_t gi = 0; gi < grid.size(); ++gi) {
        testers::SbOptions sb_options;
        sb_options.samples = 600;
        const testers::SbVerdict sb = testers::test_sb(spec, *grid[gi], sb_options, kSeed + gi);
        sb_all = sb_all && sb.secure;
        const auto batch = testers::collect_batch(spec, *grid[gi], 1200, kSeed + 100 + gi);
        sweep_report = core::merge(sweep_report, batch.report);
        const testers::CrVerdict cr = exec::timed_phase(
            sweep_report.phases.evaluation,
            [&] { return testers::test_cr(batch.samples, spec.corrupted); });
        cr_all = cr_all && cr.independent;
      }
      // Lemma 6.1 only forbids (Sb pass, CR fail).
      const bool consistent = !(sb_all && !cr_all);
      implication_holds = implication_holds && consistent;
      rec.cells.push_back(
          {name + " x " + adv_name,
           obs::check(consistent, std::string("Sb on grid ") + (sb_all ? "PASS" : "FAIL") +
                                      ", CR on grid " + (cr_all ? "PASS" : "FAIL") +
                                      " - no (Sb pass, CR fail) cell")});
      table.add_row({name, adv_name, sb_all ? "PASS" : "FAIL", cr_all ? "PASS" : "FAIL",
                     consistent ? "yes" : "NO"});
    }
  }
  std::cout << table.render() << "\n";

  // (b) The A.1 transformation: seq-broadcast + copy fails CR on uniform;
  // the same event as an Sb distinguisher also separates real from ideal.
  const auto seq = core::make_protocol("seq-broadcast");
  testers::RunSpec spec;
  spec.protocol = seq.get();
  spec.params.n = 4;
  spec.corrupted = {3};
  spec.adversary = adversary::copy_last_factory(0);
  const auto uniform = dist::make_uniform(4);
  const auto batch = testers::collect_batch(spec, *uniform, 2000, kSeed + 7);
  sweep_report = core::merge(sweep_report, batch.report);
  const testers::CrVerdict cr = exec::timed_phase(
      sweep_report.phases.evaluation,
      [&] { return testers::test_cr(batch.samples, spec.corrupted); });
  testers::SbOptions sb_options;
  sb_options.samples = 1000;
  const testers::SbVerdict sb = testers::test_sb(spec, *uniform, sb_options, kSeed + 8);
  std::cout << "A.1 construction on seq-broadcast + copy (uniform):\n  "
            << core::describe(cr) << "\n  " << core::describe(sb) << "\n";
  const bool contrapositive = !cr.independent && !sb.secure;
  rec.cells.push_back({"A.1 construction CR", obs::record(cr)});
  rec.cells.push_back({"A.1 construction Sb", obs::record(sb)});

  rec.perf.report = sweep_report;
  rec.reproduced = implication_holds && contrapositive;
  rec.detail = std::string("no (Sb pass, CR fail) cell observed: ") +
               (implication_holds ? "yes" : "NO") +
               "; CR attack transforms into Sb distinguisher (gaps " + core::fmt(cr.max_gap) +
               " / " + core::fmt(sb.max_distinguisher_gap) + ")";
  return core::finish_experiment(rec);
}
