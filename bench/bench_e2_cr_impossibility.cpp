// E2 - Lemma 5.2: for any input ensemble D outside Ψ_{C,n}, NO protocol
// achieves CR-independence under D.
//
// We cannot sweep "all protocols", but the lemma's force is that even the
// *best* protocols fail: we run all three real simultaneous-broadcast
// protocols (and the two baselines) under two correlated ensembles - the
// hard copy and the even-parity distribution - with NO corruption at all,
// and show the CR tester flags every one of them.  The violation comes from
// the correctness requirement itself: announced values must reproduce the
// correlated inputs, so an input-borne predicate correlates with W_i no
// matter how the protocol works.  As a control, the same protocols under
// the (product) uniform ensemble all pass.
#include <algorithm>
#include <iostream>

#include "core/registry.h"
#include "core/report.h"
#include "exec/runner.h"
#include "testers/cr_tester.h"

namespace {
using namespace simulcast;
constexpr std::uint64_t kSeed = 0xE2;
constexpr std::size_t kSamples = 1500;
}  // namespace

int main(int argc, char** argv) {
  exec::configure_threads(argc, argv);  // --threads=N / --json=PATH / --trace=PATH (strict)
  obs::ExperimentRecord rec;
  rec.id = "E2/cr-impossibility";
  rec.paper_claim =
      "Lemma 5.2: D outside Psi_C,n implies no protocol is CR-independent under D";
  rec.setup =
      "5 protocols x {copy, even-parity} correlated ensembles, no corruption, "
      "n = 4, 1500 executions each; uniform ensemble as the control";
  rec.seed = kSeed;
  core::print_banner(rec);

  const dist::NoisyCopyEnsemble copy(4, 0.0);
  const dist::EvenParityEnsemble parity(4);
  const auto uniform = dist::make_uniform(4);

  core::Table table({"protocol", "ensemble", "CR verdict", "max gap", "radius", "worst (i, R)"});
  bool all_correlated_flagged = true;
  bool all_uniform_passed = true;
  exec::BatchReport sweep_report;

  for (const std::string& name : core::protocol_names()) {
    // seq-broadcast-ds is the substrate-cost variant of seq-broadcast; its
    // definitional behaviour is identical and its signature traffic makes
    // thousands of executions needlessly slow, so the sweep skips it.
    if (name == "seq-broadcast-ds") continue;
    const auto proto = core::make_protocol(name);
    testers::RunSpec spec;
    spec.protocol = proto.get();
    spec.params.n = 4;
    spec.adversary = adversary::silent_factory();

    const auto eval = [&](const dist::InputEnsemble& ens, bool expect_violation) {
      const auto batch = testers::collect_batch(spec, ens, kSamples, kSeed);
      sweep_report = core::merge(sweep_report, batch.report);
      const testers::CrVerdict v = exec::timed_phase(
          sweep_report.phases.evaluation,
          [&] { return testers::test_cr(batch.samples, spec.corrupted); });
      rec.cells.push_back({name + " x " + ens.name(), obs::record(v)});
      table.add_row({name, ens.name(), v.independent ? "independent" : "VIOLATED",
                     core::fmt(v.max_gap), core::fmt(v.radius),
                     "P" + std::to_string(v.worst.party) + " / " + v.worst.predicate});
      if (expect_violation && v.independent) all_correlated_flagged = false;
      if (!expect_violation && !v.independent) all_uniform_passed = false;
    };
    eval(copy, true);
    eval(parity, true);
    eval(*uniform, false);
  }
  std::cout << table.render() << "\n";

  // With a parallel pool requested, re-run one representative cell serially
  // and record the measured speedup next to the two batch reports (outputs
  // are bit-identical by the engine's seeding contract, so this is a pure
  // wall-clock comparison).
  if (sweep_report.threads > 1) {
    const auto proto = core::make_protocol("seq-broadcast");
    testers::RunSpec spec;
    spec.protocol = proto.get();
    spec.params.n = 4;
    spec.adversary = adversary::silent_factory();
    const auto serial = testers::collect_batch(spec, *uniform, kSamples, kSeed, 1);
    const auto parallel = testers::collect_batch(spec, *uniform, kSamples, kSeed);
    std::cout << "[exec] speedup check (seq-broadcast x uniform): serial "
              << core::fmt(serial.report.wall_seconds, 3) << "s vs " << parallel.report.threads
              << " threads " << core::fmt(parallel.report.wall_seconds, 3) << "s = "
              << core::fmt(serial.report.wall_seconds /
                               std::max(parallel.report.wall_seconds, 1e-9),
                           2)
              << "x\n";
  }

  rec.perf.report = sweep_report;
  rec.reproduced = all_correlated_flagged && all_uniform_passed;
  rec.detail = std::string("every protocol violates CR under both non-Psi_C ensembles: ") +
               (all_correlated_flagged ? "yes" : "NO") +
               "; uniform control passes everywhere: " + (all_uniform_passed ? "yes" : "NO");
  return core::finish_experiment(rec);
}
