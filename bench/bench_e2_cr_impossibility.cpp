// E2 - Lemma 5.2: for any input ensemble D outside Ψ_{C,n}, NO protocol
// achieves CR-independence under D.
//
// We cannot sweep "all protocols", but the lemma's force is that even the
// *best* protocols fail: we run all three real simultaneous-broadcast
// protocols (and the two baselines) under two correlated ensembles - the
// hard copy and the even-parity distribution - with NO corruption at all,
// and show the CR tester flags every one of them.  The violation comes from
// the correctness requirement itself: announced values must reproduce the
// correlated inputs, so an input-borne predicate correlates with W_i no
// matter how the protocol works.  As a control, the same protocols under
// the (product) uniform ensemble all pass.
#include <iostream>

#include "core/registry.h"
#include "core/report.h"
#include "testers/cr_tester.h"

namespace {
using namespace simulcast;
constexpr std::uint64_t kSeed = 0xE2;
constexpr std::size_t kSamples = 1500;
}  // namespace

int main() {
  core::print_banner("E2/cr-impossibility",
                     "Lemma 5.2: D outside Psi_C,n implies no protocol is CR-independent "
                     "under D",
                     "5 protocols x {copy, even-parity} correlated ensembles, no corruption, "
                     "n = 4, 1500 executions each; uniform ensemble as the control");

  const dist::NoisyCopyEnsemble copy(4, 0.0);
  const dist::EvenParityEnsemble parity(4);
  const auto uniform = dist::make_uniform(4);

  core::Table table({"protocol", "ensemble", "CR verdict", "max gap", "radius", "worst (i, R)"});
  bool all_correlated_flagged = true;
  bool all_uniform_passed = true;

  for (const std::string& name : core::protocol_names()) {
    // seq-broadcast-ds is the substrate-cost variant of seq-broadcast; its
    // definitional behaviour is identical and its signature traffic makes
    // thousands of executions needlessly slow, so the sweep skips it.
    if (name == "seq-broadcast-ds") continue;
    const auto proto = core::make_protocol(name);
    testers::RunSpec spec;
    spec.protocol = proto.get();
    spec.params.n = 4;
    spec.adversary = adversary::silent_factory();

    const auto eval = [&](const dist::InputEnsemble& ens, bool expect_violation) {
      const auto samples = testers::collect_samples(spec, ens, kSamples, kSeed);
      const testers::CrVerdict v = testers::test_cr(samples, spec.corrupted);
      table.add_row({name, ens.name(), v.independent ? "independent" : "VIOLATED",
                     core::fmt(v.max_gap), core::fmt(v.radius),
                     "P" + std::to_string(v.worst.party) + " / " + v.worst.predicate});
      if (expect_violation && v.independent) all_correlated_flagged = false;
      if (!expect_violation && !v.independent) all_uniform_passed = false;
    };
    eval(copy, true);
    eval(parity, true);
    eval(*uniform, false);
  }
  std::cout << table.render() << "\n";

  const bool reproduced = all_correlated_flagged && all_uniform_passed;
  core::print_verdict_line(
      "E2/cr-impossibility", reproduced,
      std::string("every protocol violates CR under both non-Psi_C ensembles: ") +
          (all_correlated_flagged ? "yes" : "NO") +
          "; uniform control passes everywhere: " + (all_uniform_passed ? "yes" : "NO"));
  return reproduced ? 0 : 1;
}
