#!/usr/bin/env bash
# Collects machine-readable results from the experiment drivers.
#
# Usage: collect.sh [--trace] OUT_DIR [DRIVER...]
#
# Runs every DRIVER (default: all bench_e* binaries under $BENCH_BIN_DIR,
# itself defaulting to build/bench) with --json=OUT_DIR, so each drops its
# BENCH_<id>.json next to the printed tables.  With --trace, each driver
# also runs with --trace=OUT_DIR and the resulting TRACE_<id>.json must be
# parseable JSON with a traceEvents array (Perfetto / chrome://tracing
# loadable).  Exits non-zero if any driver fails, emits no JSON, reports
# "reproduced": false, or (under --trace) writes a malformed trace.
set -u

want_trace=0
if [ "${1:-}" = "--trace" ]; then
  want_trace=1
  shift
fi

if [ "$#" -lt 1 ]; then
  echo "usage: $0 [--trace] OUT_DIR [DRIVER...]" >&2
  exit 2
fi

out_dir=$1
shift
mkdir -p "$out_dir" || exit 2

if [ "$#" -gt 0 ]; then
  drivers=("$@")
else
  bin_dir=${BENCH_BIN_DIR:-build/bench}
  drivers=("$bin_dir"/bench_e*)
  if [ ! -e "${drivers[0]}" ]; then
    echo "collect.sh: no bench_e* drivers under '$bin_dir' (set BENCH_BIN_DIR or pass drivers)" >&2
    exit 2
  fi
fi

# Trace well-formedness: full JSON parse when python3 is around, otherwise a
# cheap shape check for the traceEvents array.
check_trace() {
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$1" >/dev/null 2>&1
  else
    grep -q '"traceEvents": \[' "$1"
  fi
}

failures=0
for driver in "${drivers[@]}"; do
  name=$(basename "$driver")
  before=$(ls "$out_dir"/BENCH_*.json 2>/dev/null | sort)
  args=(--json="$out_dir")
  if [ "$want_trace" -eq 1 ]; then
    args+=(--trace="$out_dir")
  fi
  if ! "$driver" "${args[@]}"; then
    echo "collect.sh: FAIL $name (driver exit $?)" >&2
    failures=$((failures + 1))
    continue
  fi
  after=$(ls "$out_dir"/BENCH_*.json 2>/dev/null | sort)
  # The driver prints "[obs] wrote <path>"; cross-check a file appeared or
  # was refreshed, then confirm the record says reproduced.
  written=$(comm -13 <(printf '%s\n' "$before") <(printf '%s\n' "$after"))
  if [ -z "$written" ]; then
    # Re-run over an existing sink: fall back to the newest record.
    written=$(ls -t "$out_dir"/BENCH_*.json 2>/dev/null | head -1)
  fi
  if [ -z "$written" ] || ! grep -q '"reproduced": true' $written; then
    echo "collect.sh: FAIL $name (no JSON with \"reproduced\": true in $out_dir)" >&2
    failures=$((failures + 1))
    continue
  fi
  if [ "$want_trace" -eq 1 ]; then
    trace=$(ls -t "$out_dir"/TRACE_*.json 2>/dev/null | head -1)
    if [ -z "$trace" ] || ! check_trace "$trace"; then
      echo "collect.sh: FAIL $name (no parseable TRACE_*.json in $out_dir)" >&2
      failures=$((failures + 1))
    fi
  fi
done

count=${#drivers[@]}
echo "collect.sh: $((count - failures))/$count drivers reproduced, records in $out_dir"
[ "$failures" -eq 0 ]
