#!/usr/bin/env bash
# Collects machine-readable results from the experiment drivers.
#
# Usage: collect.sh [--trace] [--faults] OUT_DIR [DRIVER...]
#
# Runs every DRIVER (default: all bench_e* binaries under $BENCH_BIN_DIR,
# itself defaulting to build/bench) with --json=OUT_DIR, so each drops its
# BENCH_<id>.json next to the printed tables.  With --trace, each driver
# also runs with --trace=OUT_DIR and the resulting TRACE_<id>.json must be
# parseable JSON with a traceEvents array (Perfetto / chrome://tracing
# loadable).  Exits non-zero if any driver fails, emits no JSON, reports
# "reproduced": false, or (under --trace) writes a malformed trace.
#
# With --faults, every driver additionally runs under a small message-drop
# rate (--drop=$FAULT_DROP, default 0.05).  A lossy network may legitimately
# flip a paper verdict, so a nonzero driver exit is tolerated; what must
# hold instead is record honesty: the driver still writes a parseable
# BENCH_*.json whose "faults" object carries the requested drop rate, whose
# traffic section carries the fault counters, and whose "reproduced" field
# is an explicit true/false verdict.
#
# With --resume, each driver instead exercises the interrupt/resume story
# end to end (DESIGN.md section 10): run once uninterrupted as a baseline,
# run again with --checkpoint + --stop-after=$RESUME_STOP (default 3) so the
# campaign self-interrupts after a few repetitions and flushes a partial
# record plus a resume checkpoint, then run a third time with --resume to
# complete it.  The resumed record must match the baseline record after
# canonicalization (timing fields and the metrics block stripped — wall
# clock legitimately differs; every deterministic field must not), and no
# checkpoint file may survive a completed campaign.
#
# With --socket, each driver instead exercises the transport seam (DESIGN.md
# section 11): run once on the default in-process backend and once with
# --transport=socket, requiring (a) both runs succeed, (b) the two records
# are identical after canonicalization — same verdicts, cells, traffic and
# wire bytes, because the backend moves bytes without changing what an
# execution computes — and (c) the socket record's metrics block shows real
# kernel traffic (a nonzero net.bytes_on_wire counter).
#
# With --process, the remaining arguments are ONE driver command line
# (binary plus its own arguments, e.g. ".../explore gennaro none uniform
# --samples=40").  The command runs three times -- default in-process
# backend, --transport=socket, --transport=process -- and the three records
# must be identical after canonicalization (the process-isolation
# equivalence contract: per-party worker processes change how bytes move,
# never what an execution computes).  The process record must additionally
# prove that workers really ran: metadata.transport == "process" and a
# nonzero proc.spawned counter in its metrics block.
#
# With --chaos, the remaining arguments are ONE driver command line (like
# --process).  The command runs twice -- once clean on the in-process
# backend, once with --transport=socket --chaos=$CHAOS_SPEC (default a
# recoverable loss/latency/corruption mix) -- and the two records must be
# identical after canonicalization: recoverable wire chaos may cost wall
# clock and retransmits, never results (DESIGN.md section 15).  The chaotic
# record must additionally prove chaos really ran: metadata.chaos names the
# spec, some net.chaos.* fault counter is nonzero, the channels recovered
# (nonzero net.chaos.retransmits) and no budget died.
#
# With --status, each driver instead exercises the live-telemetry stream
# (DESIGN.md section 13): run with --json plus a fast heartbeat
# (--status=FILE --status-interval=$STATUS_INTERVAL, default 0.05s) and then
# require that every heartbeat line parses as JSON, "completed" is monotone
# nondecreasing across the stream, every campaign id is a 16-hex
# correlation id, the last line is flagged "final", and its "completed"
# equals the total perf.completed of the records the driver wrote — the
# stream and the record agree on how much work was done.
set -u

want_trace=0
want_faults=0
want_resume=0
want_socket=0
want_status=0
want_process=0
want_chaos=0
while [ "${1:-}" = "--trace" ] || [ "${1:-}" = "--faults" ] || [ "${1:-}" = "--resume" ] ||
      [ "${1:-}" = "--socket" ] || [ "${1:-}" = "--status" ] || [ "${1:-}" = "--process" ] ||
      [ "${1:-}" = "--chaos" ]; do
  case $1 in
    --trace) want_trace=1 ;;
    --faults) want_faults=1 ;;
    --resume) want_resume=1 ;;
    --socket) want_socket=1 ;;
    --status) want_status=1 ;;
    --process) want_process=1 ;;
    --chaos) want_chaos=1 ;;
  esac
  shift
done
drop_rate=${FAULT_DROP:-0.05}
resume_stop=${RESUME_STOP:-3}
status_interval=${STATUS_INTERVAL:-0.05}
chaos_spec=${CHAOS_SPEC:-delay:uniform:0:1,loss:0.1,corrupt:0.001}

if [ "$#" -lt 1 ]; then
  echo "usage: $0 [--trace] [--faults] [--resume] [--socket] [--status] OUT_DIR [DRIVER...]" >&2
  echo "       $0 --process|--chaos OUT_DIR DRIVER [DRIVER_ARGS...]" >&2
  exit 2
fi

out_dir=$1
shift
mkdir -p "$out_dir" || exit 2

if [ "$#" -gt 0 ]; then
  drivers=("$@")
else
  bin_dir=${BENCH_BIN_DIR:-build/bench}
  drivers=("$bin_dir"/bench_e*)
  if [ ! -e "${drivers[0]}" ]; then
    echo "collect.sh: no bench_e* drivers under '$bin_dir' (set BENCH_BIN_DIR or pass drivers)" >&2
    exit 2
  fi
fi

# Trace well-formedness: full JSON parse when python3 is around, otherwise a
# cheap shape check for the traceEvents array.
check_trace() {
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$1" >/dev/null 2>&1
  else
    grep -q '"traceEvents": \[' "$1"
  fi
}

# Faulted-record honesty: the record parses, its faults object carries the
# requested drop rate, the traffic block carries all four fault counters,
# and "reproduced" is an explicit verdict.  Without python3, a grep-shaped
# approximation of the same checks.
check_faulted_record() {
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$1" "$drop_rate" 2>/dev/null <<'EOF'
import json, sys
rec = json.load(open(sys.argv[1]))
assert rec["reproduced"] in (True, False)
assert rec["faults"]["drop_probability"] == float(sys.argv[2])
traffic = rec["perf"]["traffic"]
assert all(k in traffic for k in ("dropped", "delayed", "blocked", "crashed"))
EOF
  else
    grep -q '"drop_probability": ' "$1" &&
      grep -q '"dropped": ' "$1" &&
      grep -q '"reproduced": ' "$1"
  fi
}

# Resumed-vs-baseline record equality modulo wall clock: strip the keys
# that legitimately differ between two runs of the same campaign ("metrics",
# "phases", "wall_seconds", "throughput" — all timing) anywhere in the tree,
# then require exact equality.  Determinism of everything else (verdict,
# seeds, traffic, rounds, completion accounting) is the resume contract.
check_resumed_record() {
  python3 - "$1" "$2" 2>&1 <<'EOF'
import json, sys

def canon(node):
    if isinstance(node, dict):
        return {k: canon(v) for k, v in node.items()
                if k not in ("metrics", "phases", "wall_seconds", "throughput")}
    if isinstance(node, list):
        return [canon(v) for v in node]
    return node

baseline = canon(json.load(open(sys.argv[1])))
resumed = canon(json.load(open(sys.argv[2])))
if baseline != resumed:
    for key in sorted(set(baseline) | set(resumed)):
        if baseline.get(key) != resumed.get(key):
            print(f"  field {key!r} differs:\n    baseline: {baseline.get(key)!r}\n    resumed:  {resumed.get(key)!r}")
    sys.exit(1)
EOF
}

# Socket-vs-inproc record equality: like check_resumed_record, but the
# metadata block is stripped too — it names the transport backend, the one
# field the two runs legitimately disagree on.
check_socket_pair() {
  python3 - "$1" "$2" 2>&1 <<'EOF'
import json, sys

def canon(node):
    if isinstance(node, dict):
        return {k: canon(v) for k, v in node.items()
                if k not in ("metrics", "phases", "wall_seconds", "throughput", "metadata")}
    if isinstance(node, list):
        return [canon(v) for v in node]
    return node

inproc = canon(json.load(open(sys.argv[1])))
socket = canon(json.load(open(sys.argv[2])))
if inproc != socket:
    for key in sorted(set(inproc) | set(socket)):
        if inproc.get(key) != socket.get(key):
            print(f"  field {key!r} differs:\n    inproc: {inproc.get(key)!r}\n    socket: {socket.get(key)!r}")
    sys.exit(1)
EOF
}

# The socket record must prove bytes really moved through the kernel: its
# metrics block carries a nonzero net.bytes_on_wire counter and names the
# socket backend in metadata.
check_socket_metrics() {
  python3 - "$1" 2>&1 <<'EOF'
import json, sys
rec = json.load(open(sys.argv[1]))
assert rec["metadata"]["transport"] == "socket", \
    f'metadata.transport is {rec["metadata"]["transport"]!r}, not "socket"'
bytes_on_wire = rec["metrics"]["counters"].get("net.bytes_on_wire", 0)
assert bytes_on_wire > 0, "net.bytes_on_wire is zero: no frame crossed the kernel"
EOF
}

# The process record must prove worker processes really ran: the metadata
# block names the process backend and the proc.spawned counter is nonzero.
check_process_metrics() {
  python3 - "$1" 2>&1 <<'PYEOF'
import json, sys
rec = json.load(open(sys.argv[1]))
assert rec["metadata"]["transport"] == "process", \
    f'metadata.transport is {rec["metadata"]["transport"]!r}, not "process"'
spawned = rec["metrics"]["counters"].get("proc.spawned", 0)
assert spawned > 0, "proc.spawned is zero: no worker process was ever spawned"
PYEOF
}

# The chaotic record must prove wire chaos really ran and the resilience
# machinery really recovered: metadata.chaos names the spec, at least one
# frame-fate counter moved, the channels retransmitted, and no channel
# spent its budget (recoverable chaos by construction).
check_chaos_metrics() {
  python3 - "$1" 2>&1 <<'PYEOF'
import json, sys
rec = json.load(open(sys.argv[1]))
assert rec["metadata"]["chaos"], "metadata.chaos is empty: the spec never reached the record"
counters = rec["metrics"]["counters"]
fates = sum(counters.get("net.chaos." + k, 0)
            for k in ("dropped", "duplicated", "reordered", "delayed", "corrupted"))
assert fates > 0, "every net.chaos.* fate counter is zero: chaos never touched a frame"
assert counters.get("net.chaos.retransmits", 0) > 0, \
    "net.chaos.retransmits is zero: nothing was ever recovered"
assert counters.get("net.chaos.budget_exhausted", 0) == 0, \
    "a channel spent its retransmit budget under a recoverable spec"
PYEOF
}

# Heartbeat-stream honesty: every line parses, completed never decreases,
# campaign ids are 16-hex correlation ids, the stream ends on a "final"
# beat, and that beat's completed matches the records' completed total.
check_status_stream() {
  python3 - "$@" 2>&1 <<'EOF'
import json, re, sys

status_path, record_paths = sys.argv[1], sys.argv[2:]
beats = []
with open(status_path) as stream:
    for lineno, line in enumerate(stream, 1):
        if not line.strip():
            continue
        try:
            beats.append(json.loads(line))
        except json.JSONDecodeError as err:
            sys.exit(f"  line {lineno} is not JSON: {err}")
if not beats:
    sys.exit(f"  {status_path} carries no heartbeat")

prev = -1
for i, beat in enumerate(beats, 1):
    completed = beat["completed"]
    if completed < prev:
        sys.exit(f"  beat {i}: completed went backwards ({prev} -> {completed})")
    prev = completed
    campaign = beat["campaign"]
    if campaign is not None and not re.fullmatch(r"[0-9a-f]{16}", campaign):
        sys.exit(f"  beat {i}: campaign {campaign!r} is not a 16-hex correlation id")

last = beats[-1]
if last.get("final") is not True:
    sys.exit("  stream does not end on a final heartbeat")
record_completed = sum(
    json.load(open(p))["perf"]["completed"] for p in record_paths)
if last["completed"] != record_completed:
    sys.exit(f"  final completed {last['completed']} != records' total {record_completed}")
EOF
}

if [ "$want_status" -eq 1 ]; then
  if ! command -v python3 >/dev/null 2>&1; then
    echo "collect.sh: --status needs python3 for heartbeat checks" >&2
    exit 2
  fi
  failures=0
  for driver in "${drivers[@]}"; do
    name=$(basename "$driver")
    json_dir=$out_dir/status_$name
    status_file=$out_dir/STATUS_$name.jsonl
    rm -rf "$json_dir" "$status_file"
    mkdir -p "$json_dir"

    if ! "$driver" --json="$json_dir" --status="$status_file" \
         --status-interval="$status_interval"; then
      echo "collect.sh: FAIL $name (--status run exited nonzero)" >&2
      failures=$((failures + 1))
      continue
    fi
    if [ ! -f "$status_file" ]; then
      echo "collect.sh: FAIL $name (wrote no status stream at $status_file)" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! check_status_stream "$status_file" "$json_dir"/BENCH_*.json; then
      echo "collect.sh: FAIL $name (heartbeat stream $status_file is dishonest)" >&2
      failures=$((failures + 1))
    fi
  done
  count=${#drivers[@]}
  echo "collect.sh: $((count - failures))/$count drivers streamed honest heartbeats, records in $out_dir"
  [ "$failures" -eq 0 ]
  exit
fi

if [ "$want_chaos" -eq 1 ]; then
  if ! command -v python3 >/dev/null 2>&1; then
    echo "collect.sh: --chaos needs python3 for record comparison" >&2
    exit 2
  fi
  if [ "${#drivers[@]}" -lt 1 ] || [ ! -x "${drivers[0]}" ]; then
    echo "collect.sh: --chaos needs one driver command line after OUT_DIR" >&2
    exit 2
  fi
  name=$(basename "${drivers[0]}")
  failures=0
  clean_dir=$out_dir/clean_$name
  chaos_dir=$out_dir/chaos_$name
  rm -rf "$clean_dir" "$chaos_dir"
  mkdir -p "$clean_dir" "$chaos_dir"

  if ! "${drivers[@]}" --json="$clean_dir"; then
    echo "collect.sh: FAIL $name (clean run exited nonzero)" >&2
    exit 1
  fi
  if ! "${drivers[@]}" --json="$chaos_dir" --transport=socket --chaos="$chaos_spec"; then
    echo "collect.sh: FAIL $name (--chaos=$chaos_spec run exited nonzero)" >&2
    exit 1
  fi
  for clean in "$clean_dir"/BENCH_*.json; do
    base=$(basename "$clean")
    chaotic=$chaos_dir/$base
    if [ ! -f "$chaotic" ]; then
      echo "collect.sh: FAIL $name (chaotic run wrote no $base)" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! check_socket_pair "$clean" "$chaotic"; then
      echo "collect.sh: FAIL $name ($base differs between clean and chaotic runs)" >&2
      failures=$((failures + 1))
    fi
    if ! check_chaos_metrics "$chaotic"; then
      echo "collect.sh: FAIL $name (chaotic record shows no recovered chaos)" >&2
      failures=$((failures + 1))
    fi
  done
  if [ "$failures" -eq 0 ]; then
    echo "collect.sh: $name record-identical under --chaos=$chaos_spec, records in $out_dir"
  fi
  [ "$failures" -eq 0 ]
  exit
fi

if [ "$want_process" -eq 1 ]; then
  if ! command -v python3 >/dev/null 2>&1; then
    echo "collect.sh: --process needs python3 for record comparison" >&2
    exit 2
  fi
  if [ "${#drivers[@]}" -lt 1 ] || [ ! -x "${drivers[0]}" ]; then
    echo "collect.sh: --process needs one driver command line after OUT_DIR" >&2
    exit 2
  fi
  name=$(basename "${drivers[0]}")
  failures=0
  inproc_dir=$out_dir/inproc_$name
  socket_dir=$out_dir/socket_$name
  process_dir=$out_dir/process_$name
  rm -rf "$inproc_dir" "$socket_dir" "$process_dir"
  mkdir -p "$inproc_dir" "$socket_dir" "$process_dir"

  if ! "${drivers[@]}" --json="$inproc_dir"; then
    echo "collect.sh: FAIL $name (in-process run exited nonzero)" >&2
    exit 1
  fi
  if ! "${drivers[@]}" --json="$socket_dir" --transport=socket; then
    echo "collect.sh: FAIL $name (--transport=socket run exited nonzero)" >&2
    exit 1
  fi
  if ! "${drivers[@]}" --json="$process_dir" --transport=process; then
    echo "collect.sh: FAIL $name (--transport=process run exited nonzero)" >&2
    exit 1
  fi
  for inproc in "$inproc_dir"/BENCH_*.json; do
    base=$(basename "$inproc")
    for other in "$socket_dir/$base" "$process_dir/$base"; do
      if [ ! -f "$other" ]; then
        echo "collect.sh: FAIL $name (run wrote no $other)" >&2
        failures=$((failures + 1))
        continue
      fi
      if ! check_socket_pair "$inproc" "$other"; then
        echo "collect.sh: FAIL $name ($other differs from in-process record)" >&2
        failures=$((failures + 1))
      fi
    done
    if [ -f "$process_dir/$base" ] && ! check_process_metrics "$process_dir/$base"; then
      echo "collect.sh: FAIL $name (process record shows no spawned workers)" >&2
      failures=$((failures + 1))
    fi
  done
  if [ "$failures" -eq 0 ]; then
    echo "collect.sh: $name record-identical across inproc/socket/process, records in $out_dir"
  fi
  [ "$failures" -eq 0 ]
  exit
fi

if [ "$want_socket" -eq 1 ]; then
  if ! command -v python3 >/dev/null 2>&1; then
    echo "collect.sh: --socket needs python3 for record comparison" >&2
    exit 2
  fi
  failures=0
  for driver in "${drivers[@]}"; do
    name=$(basename "$driver")
    inproc_dir=$out_dir/inproc_$name
    socket_dir=$out_dir/socket_$name
    rm -rf "$inproc_dir" "$socket_dir"
    mkdir -p "$inproc_dir" "$socket_dir"

    if ! "$driver" --json="$inproc_dir"; then
      echo "collect.sh: FAIL $name (in-process run exited nonzero)" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! "$driver" --json="$socket_dir" --transport=socket; then
      echo "collect.sh: FAIL $name (--transport=socket run exited nonzero)" >&2
      failures=$((failures + 1))
      continue
    fi
    pair_ok=1
    for inproc in "$inproc_dir"/BENCH_*.json; do
      socket=$socket_dir/$(basename "$inproc")
      if [ ! -f "$socket" ]; then
        echo "collect.sh: FAIL $name (socket run wrote no $(basename "$inproc"))" >&2
        pair_ok=0
        continue
      fi
      if ! check_socket_pair "$inproc" "$socket"; then
        echo "collect.sh: FAIL $name (socket record $(basename "$inproc") differs from in-process)" >&2
        pair_ok=0
      fi
      if ! check_socket_metrics "$socket"; then
        echo "collect.sh: FAIL $name (socket record shows no kernel traffic)" >&2
        pair_ok=0
      fi
    done
    [ "$pair_ok" -eq 1 ] || failures=$((failures + 1))
  done
  count=${#drivers[@]}
  echo "collect.sh: $((count - failures))/$count drivers verdict-identical across transports, records in $out_dir"
  [ "$failures" -eq 0 ]
  exit
fi

if [ "$want_resume" -eq 1 ]; then
  if ! command -v python3 >/dev/null 2>&1; then
    echo "collect.sh: --resume needs python3 for record comparison" >&2
    exit 2
  fi
  failures=0
  for driver in "${drivers[@]}"; do
    name=$(basename "$driver")
    base_dir=$out_dir/baseline_$name
    res_dir=$out_dir/resumed_$name
    ckpt_dir=$out_dir/ckpts_$name
    rm -rf "$base_dir" "$res_dir" "$ckpt_dir"
    mkdir -p "$base_dir" "$res_dir" "$ckpt_dir"

    if ! "$driver" --json="$base_dir"; then
      echo "collect.sh: FAIL $name (baseline run exited nonzero)" >&2
      failures=$((failures + 1))
      continue
    fi
    # Interrupted run: --stop-after makes the process drain after a few
    # repetitions; the verdict may be partial, so a nonzero exit is fine.
    # What must exist afterwards are a partial record and a checkpoint.
    "$driver" --json="$res_dir" --checkpoint="$ckpt_dir" --stop-after="$resume_stop" || true
    if ! ls "$ckpt_dir"/*.ckpt >/dev/null 2>&1; then
      echo "collect.sh: FAIL $name (interrupted run left no checkpoint in $ckpt_dir)" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! grep -q '"partial": true' "$res_dir"/BENCH_*.json; then
      echo "collect.sh: FAIL $name (interrupted run wrote no partial record)" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! "$driver" --json="$res_dir" --checkpoint="$ckpt_dir" --resume; then
      echo "collect.sh: FAIL $name (resume run exited nonzero)" >&2
      failures=$((failures + 1))
      continue
    fi
    if ls "$ckpt_dir"/*.ckpt >/dev/null 2>&1; then
      echo "collect.sh: FAIL $name (completed campaign left stale checkpoints in $ckpt_dir)" >&2
      failures=$((failures + 1))
      continue
    fi
    record_ok=1
    for baseline in "$base_dir"/BENCH_*.json; do
      resumed=$res_dir/$(basename "$baseline")
      if [ ! -f "$resumed" ] || ! check_resumed_record "$baseline" "$resumed"; then
        echo "collect.sh: FAIL $name (resumed record $(basename "$baseline") differs from baseline)" >&2
        record_ok=0
      fi
    done
    [ "$record_ok" -eq 1 ] || failures=$((failures + 1))
  done
  count=${#drivers[@]}
  echo "collect.sh: $((count - failures))/$count drivers resumed identically, records in $out_dir"
  [ "$failures" -eq 0 ]
  exit
fi

failures=0
for driver in "${drivers[@]}"; do
  name=$(basename "$driver")
  before=$(ls "$out_dir"/BENCH_*.json 2>/dev/null | sort)
  args=(--json="$out_dir")
  if [ "$want_trace" -eq 1 ]; then
    args+=(--trace="$out_dir")
  fi
  if [ "$want_faults" -eq 1 ]; then
    args+=(--drop="$drop_rate")
  fi
  if ! "$driver" "${args[@]}"; then
    if [ "$want_faults" -eq 0 ]; then
      echo "collect.sh: FAIL $name (driver exit $?)" >&2
      failures=$((failures + 1))
      continue
    fi
    echo "collect.sh: note $name exited nonzero under --faults (verdict may flip; checking the record instead)" >&2
  fi
  after=$(ls "$out_dir"/BENCH_*.json 2>/dev/null | sort)
  # The driver prints "[obs] wrote <path>"; cross-check a file appeared or
  # was refreshed, then confirm the record says reproduced.
  written=$(comm -13 <(printf '%s\n' "$before") <(printf '%s\n' "$after"))
  if [ -z "$written" ]; then
    # Re-run over an existing sink: fall back to the newest record.
    written=$(ls -t "$out_dir"/BENCH_*.json 2>/dev/null | head -1)
  fi
  if [ "$want_faults" -eq 1 ]; then
    faulted_ok=1
    for rec in $written; do
      check_faulted_record "$rec" || faulted_ok=0
    done
    if [ -z "$written" ] || [ "$faulted_ok" -eq 0 ]; then
      echo "collect.sh: FAIL $name (no well-formed faulted record in $out_dir)" >&2
      failures=$((failures + 1))
      continue
    fi
  elif [ -z "$written" ] || ! grep -q '"reproduced": true' $written; then
    echo "collect.sh: FAIL $name (no JSON with \"reproduced\": true in $out_dir)" >&2
    failures=$((failures + 1))
    continue
  fi
  if [ "$want_trace" -eq 1 ]; then
    trace=$(ls -t "$out_dir"/TRACE_*.json 2>/dev/null | head -1)
    if [ -z "$trace" ] || ! check_trace "$trace"; then
      echo "collect.sh: FAIL $name (no parseable TRACE_*.json in $out_dir)" >&2
      failures=$((failures + 1))
    fi
  fi
done

count=${#drivers[@]}
echo "collect.sh: $((count - failures))/$count drivers reproduced, records in $out_dir"
[ "$failures" -eq 0 ]
