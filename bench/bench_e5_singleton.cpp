// E5 - Proposition 6.3: the class Singleton is trivial for CR-independence
// but NOT trivial for Sb-independence.
//
// Protocol: seq-broadcast with the copy adversary - the paper's canonical
// non-simultaneous protocol.  We sweep every singleton distribution over
// {0,1}^4 and show:
//   (a) CR is vacuously satisfied on each singleton (every probability in
//       Definition 4.3 is 0/1 and the gap collapses), even though the
//       protocol is obviously dependent;
//   (b) Sb fails on the Singleton *class*: Definition 4.2 demands ONE
//       simulator for every distribution in the class, and the dummy-input
//       simulator's corrupted announced value cannot track the honest input
//       across singletons - the copy detector distinguishes with advantage
//       ~ 1 on the singletons whose victim bit is 1.
#include <iostream>

#include "core/registry.h"
#include "core/report.h"
#include "testers/cr_tester.h"
#include "testers/sb_tester.h"
#include "exec/runner.h"

namespace {
using namespace simulcast;
constexpr std::uint64_t kSeed = 0xE5;
}  // namespace

int main(int argc, char** argv) {
  exec::configure_threads(argc, argv);  // --threads=N / --json=PATH / --trace=PATH (strict)
  obs::ExperimentRecord rec;
  rec.id = "E5/singleton";
  rec.paper_claim = "Prop. 6.3: Singleton is trivial for CR but not trivial for Sb";
  rec.setup =
      "seq-broadcast, n = 4, copy adversary (P3 copies honest P0), sweeping all 16 "
      "singleton input distributions; 400 executions per singleton";
  rec.seed = kSeed;
  core::print_banner(rec);
  exec::BatchReport sweep_report;

  const auto proto = core::make_protocol("seq-broadcast");
  testers::RunSpec spec;
  spec.protocol = proto.get();
  spec.params.n = 4;
  spec.corrupted = {3};
  spec.adversary = adversary::copy_last_factory(0);

  core::Table table({"singleton", "CR verdict", "CR max gap", "Sb verdict", "Sb worst gap",
                     "worst distinguisher"});
  bool cr_trivial = true;      // CR passes on every singleton
  bool sb_fails_somewhere = false;  // some singleton defeats the class simulator
  double worst_sb_gap = 0.0;

  for (std::uint64_t bits = 0; bits < 16; ++bits) {
    const dist::SingletonEnsemble ens(BitVec(4, bits));
    const auto batch = testers::collect_batch(spec, ens, 400, kSeed + bits);
    sweep_report = core::merge(sweep_report, batch.report);
    const testers::CrVerdict cr = exec::timed_phase(
        sweep_report.phases.evaluation,
        [&] { return testers::test_cr(batch.samples, spec.corrupted); });

    testers::SbOptions sb_options;
    sb_options.samples = 400;
    const testers::SbVerdict sb = testers::test_sb(spec, ens, sb_options, kSeed + bits);

    rec.cells.push_back({BitVec(4, bits).to_string() + " CR", obs::record(cr)});
    rec.cells.push_back({BitVec(4, bits).to_string() + " Sb", obs::record(sb)});
    table.add_row({BitVec(4, bits).to_string(), cr.independent ? "independent" : "VIOLATED",
                   core::fmt(cr.max_gap), sb.secure ? "simulatable" : "VIOLATED",
                   core::fmt(sb.max_distinguisher_gap), sb.worst.distinguisher});
    cr_trivial = cr_trivial && cr.independent;
    if (!sb.secure) sb_fails_somewhere = true;
    worst_sb_gap = std::max(worst_sb_gap, sb.max_distinguisher_gap);
  }
  std::cout << table.render() << "\n";

  rec.perf.report = sweep_report;
  rec.reproduced = cr_trivial && sb_fails_somewhere;
  rec.detail = std::string("CR vacuous on all 16 singletons: ") + (cr_trivial ? "yes" : "NO") +
               "; Sb class-simulation broken (worst distinguisher advantage " +
               core::fmt(worst_sb_gap) + ")";
  return core::finish_experiment(rec);
}
