#!/usr/bin/env bash
# Compares freshly collected BENCH_*.json records against committed
# baselines, so a regression in verdicts, traffic or throughput is caught
# in CI instead of drifting silently.
#
# Usage: compare.sh BASELINE_DIR OUT_DIR [DRIVER...]
#
# With DRIVERs given, each is first run with --json=OUT_DIR (same contract
# as collect.sh); without, OUT_DIR is assumed to already hold records.
# Every BENCH_<id>.json in OUT_DIR is then compared against the file of the
# same name in BASELINE_DIR:
#
#   - Deterministic fields (verdicts, cells, seeds, rounds, traffic
#     including the wire-byte counts, completion accounting) must match the
#     baseline exactly after canonicalization.  Stripped as legitimately
#     run-dependent: the metrics block, per-phase timings, wall clock,
#     throughput, and the metadata block (threads / compiler / build /
#     transport describe the machine, not the result).
#   - Throughput must be within BENCH_TOL relative tolerance of the
#     baseline (default 0.5, i.e. +/-50%; BENCH_TOL=skip disables the
#     check for noisy boxes).  When baseline and candidate were collected
#     on different transport backends (metadata.transport differs, e.g. a
#     committed in-process baseline vs a --transport=process rerun) the
#     throughput check is skipped with a note: backends deliberately trade
#     speed for isolation, so cross-backend drift is not a regression.
#     The deterministic-field comparison still applies in full.
#   - Both records must carry a schema_version this script knows.  A
#     missing or unknown version fails loudly instead of "comparing" two
#     records whose field layouts this script cannot interpret — stale
#     baselines must be regenerated, not silently matched.
#
# Exits nonzero when any record drifts, prints a per-field diff, and
# requires at least one record to actually compare (an empty intersection
# is a harness bug, not a pass).
set -u

if [ "$#" -lt 2 ]; then
  echo "usage: $0 BASELINE_DIR OUT_DIR [DRIVER...]" >&2
  exit 2
fi
baseline_dir=$1
out_dir=$2
shift 2
tolerance=${BENCH_TOL:-0.5}

if ! command -v python3 >/dev/null 2>&1; then
  echo "compare.sh: needs python3 for record comparison" >&2
  exit 2
fi
if [ ! -d "$baseline_dir" ]; then
  echo "compare.sh: baseline directory '$baseline_dir' does not exist" >&2
  exit 2
fi
mkdir -p "$out_dir" || exit 2

for driver in "$@"; do
  if ! "$driver" --json="$out_dir"; then
    echo "compare.sh: FAIL $(basename "$driver") (driver exit $?)" >&2
    exit 1
  fi
done

compare_record() {
  python3 - "$1" "$2" "$tolerance" <<'EOF'
import json, sys

def canon(node):
    if isinstance(node, dict):
        return {k: canon(v) for k, v in node.items()
                if k not in ("metrics", "phases", "wall_seconds", "throughput", "metadata")}
    if isinstance(node, list):
        return [canon(v) for v in node]
    return node

baseline = json.load(open(sys.argv[1]))
candidate = json.load(open(sys.argv[2]))
tol = sys.argv[3]
failed = False

# Versions this script can interpret (obs/records.h kSchemaVersion history).
# Anything else means the field layout below is wrong for the record, so
# refuse to compare rather than produce a meaningless verdict.
KNOWN_SCHEMAS = {8}
for role, rec, path in (("baseline", baseline, sys.argv[1]),
                        ("candidate", candidate, sys.argv[2])):
    version = rec.get("schema_version")
    if version not in KNOWN_SCHEMAS:
        failed = True
        print(f"  {role} {path}: unknown or missing schema_version {version!r}"
              f" (known: {sorted(KNOWN_SCHEMAS)}); regenerate the record")

cb, cc = canon(baseline), canon(candidate)
if cb != cc:
    failed = True
    for key in sorted(set(cb) | set(cc)):
        if cb.get(key) != cc.get(key):
            print(f"  field {key!r} differs:\n    baseline:  {cb.get(key)!r}\n    candidate: {cc.get(key)!r}")

base_transport = baseline.get("metadata", {}).get("transport")
cand_transport = candidate.get("metadata", {}).get("transport")
if base_transport != cand_transport:
    # Different backends trade throughput for isolation by design; only the
    # deterministic fields are comparable across them.
    print(f"  note: transports differ (baseline {base_transport!r}, candidate"
          f" {cand_transport!r}); skipping throughput check")
elif tol != "skip":
    base_tp = baseline["perf"]["throughput"]
    cand_tp = candidate["perf"]["throughput"]
    if base_tp > 0:
        drift = abs(cand_tp - base_tp) / base_tp
        if drift > float(tol):
            failed = True
            print(f"  throughput drifted {drift:.2f} (> {tol}): baseline {base_tp:.1f}, candidate {cand_tp:.1f} exec/s")

sys.exit(1 if failed else 0)
EOF
}

compared=0
failures=0
shopt -s nullglob
for candidate in "$out_dir"/BENCH_*.json; do
  name=$(basename "$candidate")
  baseline=$baseline_dir/$name
  if [ ! -f "$baseline" ]; then
    echo "compare.sh: note $name has no committed baseline; skipping" >&2
    continue
  fi
  compared=$((compared + 1))
  if ! compare_record "$baseline" "$candidate"; then
    echo "compare.sh: FAIL $name drifted from $baseline" >&2
    failures=$((failures + 1))
  fi
done

if [ "$compared" -eq 0 ]; then
  echo "compare.sh: no record in $out_dir has a baseline in $baseline_dir" >&2
  exit 2
fi
echo "compare.sh: $((compared - failures))/$compared records match the baselines"
[ "$failures" -eq 0 ]
