// E3 - Lemma 5.4: for any input ensemble D outside Ψ_{L,n} (not locally
// independent), NO protocol achieves G-independence under D.
//
// Same structure as E2 but for the G notion, which tests corrupted
// coordinates: we corrupt one party, let it behave entirely honestly
// (passive adversary), and draw inputs from ensembles where the corrupted
// party's input is correlated with the honest ones.  Correctness forces the
// corrupted party's honest machine to announce its correlated input, so the
// conditional probabilities of Definition 4.4 differ across honest announced
// vectors for every protocol.  The PRF-correlated ensemble - inside D(CR)
// but outside D(G) - is included to show the impossibility already bites on
// the gap between the two classes.  Uniform is the passing control.
#include <iostream>

#include "core/registry.h"
#include "core/report.h"
#include "testers/g_tester.h"
#include "exec/runner.h"

namespace {
using namespace simulcast;
constexpr std::uint64_t kSeed = 0xE3;
constexpr std::size_t kSamples = 3000;
}  // namespace

int main(int argc, char** argv) {
  exec::configure_threads(argc, argv);  // --threads=N / --json=PATH / --trace=PATH (strict)
  obs::ExperimentRecord rec;
  rec.id = "E3/g-impossibility";
  rec.paper_claim =
      "Lemma 5.4: D outside Psi_L,n implies no protocol is G-independent under D";
  rec.setup =
      "5 protocols x {copy, noisy-copy eps=.1, prf-correlated} ensembles, corrupted "
      "party = the correlated coordinate (n-1) behaving honestly, n = 4..5, 3000 "
      "executions each; uniform as the control";
  rec.seed = kSeed;
  core::print_banner(rec);

  core::Table table(
      {"protocol", "ensemble", "G verdict", "max excess", "worst gap", "conditionings"});
  bool all_correlated_flagged = true;
  bool all_uniform_passed = true;
  exec::BatchReport sweep_report;

  for (const std::string& name : core::protocol_names()) {
    // seq-broadcast-ds is the substrate-cost variant of seq-broadcast; its
    // definitional behaviour is identical and its signature traffic makes
    // thousands of executions needlessly slow, so the sweep skips it.
    if (name == "seq-broadcast-ds") continue;
    const auto proto = core::make_protocol(name);

    const auto eval = [&](const dist::InputEnsemble& ens, bool expect_violation) {
      testers::RunSpec spec;
      spec.protocol = proto.get();
      spec.params.n = ens.bits();
      spec.corrupted = {ens.bits() - 1};  // the correlated coordinate
      spec.adversary = adversary::passive_factory(*proto, spec.params);
      const auto batch = testers::collect_batch(spec, ens, kSamples, kSeed);
      sweep_report = core::merge(sweep_report, batch.report);
      const testers::GVerdict v = exec::timed_phase(
          sweep_report.phases.evaluation,
          [&] { return testers::test_g(batch.samples, spec.corrupted); });
      rec.cells.push_back({name + " x " + ens.name(), obs::record(v)});
      table.add_row({name, ens.name(), v.independent ? "independent" : "VIOLATED",
                     core::fmt(v.max_excess), core::fmt(v.worst.gap),
                     std::to_string(v.pairs_tested)});
      if (expect_violation && v.independent) all_correlated_flagged = false;
      if (!expect_violation && !v.independent) all_uniform_passed = false;
    };

    eval(dist::NoisyCopyEnsemble(4, 0.0), true);
    eval(dist::NoisyCopyEnsemble(4, 0.1), true);
    eval(dist::PrfCorrelatedEnsemble(5, 0), true);
    eval(*dist::make_uniform(4), false);
  }
  std::cout << table.render() << "\n";

  rec.perf.report = sweep_report;
  rec.reproduced = all_correlated_flagged && all_uniform_passed;
  rec.detail =
      std::string("every protocol violates G under all three non-Psi_L ensembles: ") +
      (all_correlated_flagged ? "yes" : "NO") +
      "; uniform control passes everywhere: " + (all_uniform_passed ? "yes" : "NO");
  return core::finish_experiment(rec);
}
