// E13 - tester calibration: how many executions does it take to detect the
// paper's separations, and do the testers stay quiet on honest runs?
//
// Not a paper result; this experiment underwrites the statistical
// substitution in DESIGN.md ("negligible in k" -> Monte-Carlo gap vs
// Hoeffding radius).  Two curves:
//   - detection: smallest sample count at which the CR tester flags
//     flawed-pi-g under A* (true gap 1/4) and at which the G tester flags
//     naive-commit-reveal under selective abort (true conditional gap 1);
//   - false positives: at the largest sample count, honest/passive runs
//     across all protocols produce zero flags (the union-bounded radii are
//     doing their job).
#include <iostream>

#include "core/registry.h"
#include "core/report.h"
#include "testers/cr_tester.h"
#include "testers/g_tester.h"
#include "exec/runner.h"

namespace {
using namespace simulcast;
constexpr std::uint64_t kSeed = 0xE13;
const std::vector<std::size_t> kSampleCounts = {100, 200, 400, 800, 1600, 3200, 6400};
}  // namespace

int main(int argc, char** argv) {
  exec::configure_threads(argc, argv);  // --threads=N / --json=PATH / --trace=PATH (strict)
  obs::ExperimentRecord rec;
  rec.id = "E13/tester-power";
  rec.paper_claim =
      "(methodology) finite-sample power of the definition testers: detection "
      "thresholds for the paper's separations, zero false positives on honest runs";
  rec.setup =
      "sample sweep 100..6400; detection targets: CR on flawed-pi-g/A* (gap 1/4), "
      "G on naive-commit-reveal/selective-abort (gap 1)";
  rec.seed = kSeed;
  core::print_banner(rec);
  exec::BatchReport sweep_report;

  // Detection curve 1: CR on the Lemma 6.4 attack.
  const auto pig = core::make_protocol("flawed-pi-g");
  testers::RunSpec pig_spec;
  pig_spec.protocol = pig.get();
  pig_spec.params.n = 5;
  pig_spec.corrupted = {1, 3};
  pig_spec.adversary = adversary::parity_factory();
  const auto uniform5 = dist::make_uniform(5);

  // Detection curve 2: G on selective abort.
  static const crypto::HashCommitmentScheme scheme;
  const auto ncr = core::make_protocol("naive-commit-reveal");
  testers::RunSpec ncr_spec;
  ncr_spec.protocol = ncr.get();
  ncr_spec.params.n = 4;
  ncr_spec.params.commitments = &scheme;
  ncr_spec.corrupted = {3};
  ncr_spec.adversary = adversary::selective_abort_factory(0, scheme);
  const auto uniform4 = dist::make_uniform(4);

  core::Table table({"samples", "CR on flawed-pi-g/A*", "CR gap/radius",
                     "G on ncr/abort", "G excess"});
  std::size_t cr_detect_at = 0;
  std::size_t g_detect_at = 0;
  for (const std::size_t count : kSampleCounts) {
    const auto pig_batch = testers::collect_batch(pig_spec, *uniform5, count, kSeed);
    sweep_report = core::merge(sweep_report, pig_batch.report);
    const auto cr = exec::timed_phase(
        sweep_report.phases.evaluation,
        [&] { return testers::test_cr(pig_batch.samples, pig_spec.corrupted); });
    if (!cr.independent && cr_detect_at == 0) cr_detect_at = count;

    const auto ncr_batch = testers::collect_batch(ncr_spec, *uniform4, count, kSeed + 1);
    sweep_report = core::merge(sweep_report, ncr_batch.report);
    const auto g = exec::timed_phase(
        sweep_report.phases.evaluation,
        [&] { return testers::test_g(ncr_batch.samples, ncr_spec.corrupted); });
    if (!g.independent && g_detect_at == 0) g_detect_at = count;

    rec.cells.push_back({"CR @" + std::to_string(count), obs::record(cr)});
    rec.cells.push_back({"G @" + std::to_string(count), obs::record(g)});
    table.add_row({std::to_string(count), cr.independent ? "quiet" : "DETECTED",
                   core::fmt(cr.max_gap) + "/" + core::fmt(cr.radius),
                   g.independent ? "quiet" : "DETECTED", core::fmt(g.max_excess)});
  }
  std::cout << table.render() << "\n"
            << "first detection: CR at " << cr_detect_at << " samples, G at " << g_detect_at
            << " samples\n\n";

  // False positives at the largest count: honest/passive runs of every
  // protocol must be quiet.
  bool no_false_positives = true;
  for (const std::string& name : core::protocol_names()) {
    if (name == "seq-broadcast-ds") continue;  // substrate variant, slow
    const auto proto = core::make_protocol(name);
    testers::RunSpec spec;
    spec.protocol = proto.get();
    spec.params.n = 4;
    spec.corrupted = {2};
    spec.adversary = adversary::passive_factory(*proto, spec.params);
    const auto batch = testers::collect_batch(spec, *uniform4, 6400, kSeed + 2);
    sweep_report = core::merge(sweep_report, batch.report);
    const auto cr = exec::timed_phase(
        sweep_report.phases.evaluation,
        [&] { return testers::test_cr(batch.samples, spec.corrupted); });
    const auto g = exec::timed_phase(
        sweep_report.phases.evaluation,
        [&] { return testers::test_g(batch.samples, spec.corrupted); });
    if (!cr.independent || !g.independent) {
      no_false_positives = false;
      std::cout << "FALSE POSITIVE on " << name << ": " << core::describe(cr) << " | "
                << core::describe(g) << "\n";
    }
  }
  if (no_false_positives)
    std::cout << "no false positives across " << core::protocol_names().size() - 1
              << " protocols at 6400 samples\n";
  rec.cells.push_back(
      {"no false positives",
       obs::check(no_false_positives, "honest/passive runs of every protocol stay quiet "
                                      "at 6400 samples")});

  rec.perf.report = sweep_report;
  rec.reproduced = cr_detect_at > 0 && cr_detect_at <= 1600 && g_detect_at > 0 &&
                   g_detect_at <= 800 && no_false_positives;
  rec.detail = "CR detects the 1/4-gap at " + std::to_string(cr_detect_at) +
               " samples, G detects the unit gap at " + std::to_string(g_detect_at) +
               " samples; zero false positives";
  return core::finish_experiment(rec);
}
