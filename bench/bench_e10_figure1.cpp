// E10 - Figure 1: the paper's implication/separation diagram, regenerated
// from measurements.
//
//            D(CR)                    D(G)
//     Sb ==========> CR        CR ==========> G
//     Sb <===/=== CR (Singleton)   CR <===/=== G (D(G), incl. uniform)
//
// Each arrow is re-derived from a dedicated measurement:
//   Sb => CR   : Gennaro/passive passes Sb and CR on a D(CR) ensemble.
//   CR =/=> Sb : seq-broadcast/copy on a singleton: CR vacuously holds,
//                Sb simulation fails (Prop. 6.3).
//   CR => G    : Gennaro/passive passes CR and G on a D(G) ensemble.
//   G =/=> CR  : flawed-pi-g under A* on uniform: G holds, CR fails
//                (Lemma 6.4).
#include <iostream>

#include "core/registry.h"
#include "core/report.h"
#include "testers/cr_tester.h"
#include "testers/g_tester.h"
#include "testers/sb_tester.h"
#include "exec/runner.h"

namespace {
using namespace simulcast;
constexpr std::uint64_t kSeed = 0xE10;
}  // namespace

int main(int argc, char** argv) {
  exec::configure_threads(argc, argv);  // --threads=N / --json=PATH / --trace=PATH (strict)
  obs::ExperimentRecord rec;
  rec.id = "E10/figure1";
  rec.paper_claim =
      "Figure 1: Sb =(D(CR))=> CR, CR =/= (Singleton)=> Sb; CR =(D(G))=> G, "
      "G =/= (D(G))=> CR";
  rec.setup = "composes the four arrows from dedicated measurements (n = 4..5)";
  rec.seed = kSeed;
  core::print_banner(rec);
  exec::BatchReport sweep_report;

  const auto uniform4 = dist::make_uniform(4);
  const auto uniform5 = dist::make_uniform(5);

  // Arrow 1: Sb => CR witnessed positively by gennaro/passive.
  bool arrow1 = false;
  {
    const auto proto = core::make_protocol("gennaro");
    testers::RunSpec spec;
    spec.protocol = proto.get();
    spec.params.n = 4;
    spec.corrupted = {2};
    spec.adversary = adversary::passive_factory(*proto, spec.params);
    testers::SbOptions sb_options;
    sb_options.samples = 900;
    const auto sb = testers::test_sb(spec, *uniform4, sb_options, kSeed);
    const auto batch = testers::collect_batch(spec, *uniform4, 2500, kSeed + 1);
    sweep_report = core::merge(sweep_report, batch.report);
    const auto cr = exec::timed_phase(
        sweep_report.phases.evaluation,
        [&] { return testers::test_cr(batch.samples, spec.corrupted); });
    arrow1 = sb.secure && cr.independent;
    rec.cells.push_back(
        {"Sb => CR (gennaro/passive, uniform)",
         obs::check(arrow1, std::string("Sb ") + core::verdict_str(sb.secure) + ", CR " +
                                core::verdict_str(cr.independent))});
    std::cout << "Sb ==> CR   (gennaro/passive, uniform):    Sb "
              << core::verdict_str(sb.secure) << ", CR " << core::verdict_str(cr.independent)
              << "\n";
  }

  // Arrow 2: CR =/=> Sb on Singleton (Prop. 6.3).
  bool arrow2 = false;
  {
    const auto proto = core::make_protocol("seq-broadcast");
    testers::RunSpec spec;
    spec.protocol = proto.get();
    spec.params.n = 4;
    spec.corrupted = {3};
    spec.adversary = adversary::copy_last_factory(0);
    const dist::SingletonEnsemble singleton(BitVec::from_string("1011"));
    const auto batch = testers::collect_batch(spec, singleton, 800, kSeed + 2);
    sweep_report = core::merge(sweep_report, batch.report);
    const auto cr = exec::timed_phase(
        sweep_report.phases.evaluation,
        [&] { return testers::test_cr(batch.samples, spec.corrupted); });
    testers::SbOptions sb_options;
    sb_options.samples = 600;
    const auto sb = testers::test_sb(spec, singleton, sb_options, kSeed + 3);
    arrow2 = cr.independent && !sb.secure;
    rec.cells.push_back(
        {"CR =/=> Sb (seq/copy, singleton 1011)",
         obs::check(arrow2, std::string("CR ") + core::verdict_str(cr.independent) + ", Sb " +
                                core::verdict_str(sb.secure) +
                                " (separation needs CR PASS + Sb FAIL)")});
    std::cout << "CR =/=> Sb  (seq/copy, singleton 1011):    CR "
              << core::verdict_str(cr.independent) << ", Sb " << core::verdict_str(sb.secure)
              << " (separation needs CR PASS + Sb FAIL)\n";
  }

  // Arrow 3: CR => G witnessed positively by gennaro/passive.
  bool arrow3 = false;
  {
    const auto proto = core::make_protocol("gennaro");
    testers::RunSpec spec;
    spec.protocol = proto.get();
    spec.params.n = 4;
    spec.corrupted = {1};
    spec.adversary = adversary::passive_factory(*proto, spec.params);
    const auto batch = testers::collect_batch(spec, *uniform4, 3000, kSeed + 4);
    sweep_report = core::merge(sweep_report, batch.report);
    const auto cr = exec::timed_phase(
        sweep_report.phases.evaluation,
        [&] { return testers::test_cr(batch.samples, spec.corrupted); });
    const auto g = exec::timed_phase(
        sweep_report.phases.evaluation,
        [&] { return testers::test_g(batch.samples, spec.corrupted); });
    arrow3 = cr.independent && g.independent;
    rec.cells.push_back(
        {"CR => G (gennaro/passive, uniform)",
         obs::check(arrow3, std::string("CR ") + core::verdict_str(cr.independent) + ", G " +
                                core::verdict_str(g.independent))});
    std::cout << "CR ==> G    (gennaro/passive, uniform):    CR "
              << core::verdict_str(cr.independent) << ", G " << core::verdict_str(g.independent)
              << "\n";
  }

  // Arrow 4: G =/=> CR on D(G) including uniform (Lemma 6.4).
  bool arrow4 = false;
  {
    const auto proto = core::make_protocol("flawed-pi-g");
    testers::RunSpec spec;
    spec.protocol = proto.get();
    spec.params.n = 5;
    spec.corrupted = {1, 3};
    spec.adversary = adversary::parity_factory();
    const auto batch = testers::collect_batch(spec, *uniform5, 4000, kSeed + 5);
    sweep_report = core::merge(sweep_report, batch.report);
    const auto g = exec::timed_phase(
        sweep_report.phases.evaluation,
        [&] { return testers::test_g(batch.samples, spec.corrupted); });
    const auto cr = exec::timed_phase(
        sweep_report.phases.evaluation,
        [&] { return testers::test_cr(batch.samples, spec.corrupted); });
    arrow4 = g.independent && !cr.independent;
    rec.cells.push_back(
        {"G =/=> CR (flawed-pi-g/A*, uniform)",
         obs::check(arrow4, std::string("G ") + core::verdict_str(g.independent) + ", CR " +
                                core::verdict_str(cr.independent) +
                                " (separation needs G PASS + CR FAIL)")});
    std::cout << "G =/=> CR   (flawed-pi-g/A*, uniform):     G "
              << core::verdict_str(g.independent) << ", CR " << core::verdict_str(cr.independent)
              << " (separation needs G PASS + CR FAIL)\n";
  }

  std::cout << "\n            D(CR)                        D(G)\n"
            << "    Sb ====[" << (arrow1 ? "ok" : "??") << "]====> CR       CR ====["
            << (arrow3 ? "ok" : "??") << "]====> G\n"
            << "    Sb <===[" << (arrow2 ? "broken-as-claimed" : "??")
            << "]=== CR       CR <===[" << (arrow4 ? "broken-as-claimed" : "??")
            << "]=== G\n        (Singleton)                  (uniform in D(G))\n\n";

  rec.perf.report = sweep_report;
  rec.reproduced = arrow1 && arrow2 && arrow3 && arrow4;
  rec.detail = "all four arrows of Figure 1 reproduced from measurements";
  return core::finish_experiment(rec);
}
