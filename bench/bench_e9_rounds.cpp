// E9 - the efficiency narrative of Sections 1 and 7: round complexity
// linear [7] -> logarithmic [8] -> constant [12].
//
// The paper reports no measured table; its motivation is the asymptotic
// round counts.  This harness measures, for n in {4, 8, 16, 32, 64}, the
// actual executed rounds, message count and wire bytes of each protocol
// in an all-honest run, and checks the shape: CGMA grows linearly in n,
// Chor-Rabin logarithmically, Gennaro stays constant.  A second table
// ablates the commitment backend of the naive protocol (hash vs Pedersen) -
// round/message counts are invariant, byte counts differ.
#include <iostream>

#include "adversary/adversaries.h"
#include "core/registry.h"
#include "core/report.h"
#include "sim/network.h"
#include "exec/runner.h"

namespace {
using namespace simulcast;

struct Measurement {
  std::size_t rounds = 0;
  std::size_t messages = 0;
  std::size_t wire_bytes = 0;
};

Measurement measure(const sim::ParallelBroadcastProtocol& proto, std::size_t n,
                    const crypto::CommitmentScheme* scheme = nullptr) {
  sim::ProtocolParams params;
  params.n = n;
  params.commitments = scheme;
  adversary::SilentAdversary adv;
  sim::ExecutionConfig config;
  config.seed = 0xE9;
  stats::Rng rng(n);
  BitVec inputs(n);
  for (std::size_t i = 0; i < n; ++i) inputs.set(i, rng.bit());
  const auto result = sim::run_execution(proto, params, inputs, adv, config);
  if (!result.honest_outputs_consistent({}))
    throw ProtocolError("E9: inconsistent execution at n=" + std::to_string(n));
  return {result.rounds, result.traffic.messages, result.traffic.wire_bytes};
}

}  // namespace

int main(int argc, char** argv) {
  exec::configure_threads(argc, argv);  // --threads=N / --json=PATH / --trace=PATH (strict)
  obs::ExperimentRecord rec;
  rec.id = "E9/rounds";
  rec.paper_claim =
      "Sections 1/7: rounds(CGMA) = Theta(n) [7], rounds(Chor-Rabin) = Theta(log n) "
      "[8], rounds(Gennaro) = O(1) [12]";
  rec.setup =
      "all-honest executions, n in {4, 8, 16, 32, 64}; measured rounds / messages / "
      "wire bytes per protocol";
  rec.seed = 0xE9;
  core::print_banner(rec);

  const std::vector<std::size_t> sizes = {4, 8, 16, 32, 64};
  const std::vector<std::string> names = {"seq-broadcast", "cgma", "chor-rabin", "gennaro",
                                          "naive-commit-reveal", "flawed-pi-g"};

  core::Table table({"protocol", "n=4", "n=8", "n=16", "n=32", "n=64", "shape"});
  std::map<std::string, std::vector<Measurement>> results;
  for (const std::string& name : names) {
    const auto proto = core::make_protocol(name);
    std::vector<std::string> row = {name};
    for (std::size_t n : sizes) {
      const Measurement m = measure(*proto, n);
      results[name].push_back(m);
      row.push_back(std::to_string(m.rounds) + "r/" + std::to_string(m.messages) + "m/" +
                    std::to_string(m.wire_bytes) + "B");
    }
    std::string shape = "-";
    if (name == "cgma" || name == "seq-broadcast") shape = "linear";
    if (name == "chor-rabin") shape = "logarithmic";
    if (name == "gennaro" || name == "naive-commit-reveal" || name == "flawed-pi-g")
      shape = "constant";
    row.push_back(shape);
    table.add_row(row);
  }
  std::cout << table.render() << "\n";

  // Shape checks on rounds.
  const auto rounds_of = [&](const std::string& name, std::size_t idx) {
    return results[name][idx].rounds;
  };
  // Linear: doubling n roughly doubles CGMA's rounds (n + 3).
  const bool cgma_linear =
      rounds_of("cgma", 4) > 3 * rounds_of("cgma", 1) && rounds_of("cgma", 4) == 64 + 3;
  // Logarithmic: doubling n adds a constant (3 rounds per extra batch).
  bool cr_log = true;
  for (std::size_t i = 1; i < sizes.size(); ++i)
    cr_log = cr_log && (rounds_of("chor-rabin", i) - rounds_of("chor-rabin", i - 1) == 3);
  // Constant.
  const bool gennaro_const = rounds_of("gennaro", 0) == rounds_of("gennaro", 4);
  // Crossovers: at n = 4 CGMA is cheapest of the three in rounds; by n = 64
  // the order is gennaro < chor-rabin < cgma.
  const bool order_at_64 = rounds_of("gennaro", 4) < rounds_of("chor-rabin", 4) &&
                           rounds_of("chor-rabin", 4) < rounds_of("cgma", 4);

  // Substrate cost: the same sequential schedule with the broadcast channel
  // implemented from point-to-point links + hash-based signatures
  // (Dolev-Strong).  This is what the channel abstraction hides.
  {
    core::Table ds_table({"protocol", "n=4", "n=8"});
    for (const char* name : {"seq-broadcast", "seq-broadcast-ds"}) {
      const auto proto = core::make_protocol(name);
      std::vector<std::string> row = {name};
      for (std::size_t n : {4u, 8u}) {
        const Measurement m = measure(*proto, n);
        row.push_back(std::to_string(m.rounds) + "r/" + std::to_string(m.messages) + "m/" +
                      std::to_string(m.wire_bytes) + "B");
      }
      ds_table.add_row(row);
    }
    std::cout << "broadcast-channel substrate cost (sequential schedule):\n"
              << ds_table.render() << "\n";
  }

  // Commitment-backend ablation on the naive protocol.
  const auto naive = core::make_protocol("naive-commit-reveal");
  const crypto::HashCommitmentScheme hash_scheme;
  const crypto::PedersenCommitmentScheme pedersen_scheme;
  const Measurement mh = measure(*naive, 16, &hash_scheme);
  const Measurement mp = measure(*naive, 16, &pedersen_scheme);
  core::Table ablation({"backend", "rounds", "messages", "wire bytes"});
  ablation.add_row({"hash-sha256", std::to_string(mh.rounds), std::to_string(mh.messages),
                    std::to_string(mh.wire_bytes)});
  ablation.add_row({"pedersen", std::to_string(mp.rounds), std::to_string(mp.messages),
                    std::to_string(mp.wire_bytes)});
  std::cout << "commitment-backend ablation (naive-commit-reveal, n = 16):\n"
            << ablation.render() << "\n";
  const bool ablation_ok =
      mh.rounds == mp.rounds && mh.messages == mp.messages && mh.wire_bytes != mp.wire_bytes;

  rec.cells.push_back({"cgma linear",
                       obs::check(cgma_linear, "rounds(n=64) = " +
                                                   std::to_string(rounds_of("cgma", 4)) +
                                                   " = n + 3")});
  rec.cells.push_back(
      {"chor-rabin logarithmic",
       obs::check(cr_log, "each doubling of n adds 3 rounds (rounds(n=64) = " +
                              std::to_string(rounds_of("chor-rabin", 4)) + ")")});
  rec.cells.push_back(
      {"gennaro constant",
       obs::check(gennaro_const, "rounds(n=4) = rounds(n=64) = " +
                                     std::to_string(rounds_of("gennaro", 4)))});
  rec.cells.push_back({"order at n=64",
                       obs::check(order_at_64, "gennaro < chor-rabin < cgma in rounds")});
  rec.cells.push_back(
      {"commitment-backend ablation",
       obs::check(ablation_ok,
                  "hash vs pedersen: rounds/messages invariant, wire bytes differ (" +
                      std::to_string(mh.wire_bytes) + "B vs " +
                      std::to_string(mp.wire_bytes) + "B)")});

  rec.reproduced = cgma_linear && cr_log && gennaro_const && order_at_64 && ablation_ok;
  rec.detail = "rounds at n=64: cgma=" + std::to_string(rounds_of("cgma", 4)) +
               " chor-rabin=" + std::to_string(rounds_of("chor-rabin", 4)) +
               " gennaro=" + std::to_string(rounds_of("gennaro", 4)) +
               " (linear / log / constant as in the paper)";
  return core::finish_experiment(rec);
}
